package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/obs"
)

// This file adds the many-small-messages tooling on persistent endpoints:
// batched coalesced sends (one queue enqueue — one slot reservation, one
// release — per *batch* instead of per message), and the non-blocking
// TrySend/TryRecv pair that lets an application express backpressure
// policy (drop vs block) and fan-in receive loops without parking in a
// blocking wait per channel.
//
// Batch wire format, inside one ordinary eager message:
//
//	[count u16] then count × ([len u32][bytes])
//
// Both ends must agree to speak batches on a given endpoint pair:
// SendBatch/TrySendBatch on the send side, RecvBatch/TryRecvBatch on the
// receive side.  A batch frame is just a message, so it rides every
// existing path — PBQ, modeled network, real transport — unchanged.

const (
	batchHeader    = 2 // u16 sub-message count
	batchMsgHeader = 4 // u32 sub-message length
)

// appendBatch encodes msgs into dst's spare capacity.
func appendBatch(dst []byte, msgs [][]byte) []byte {
	var hdr [batchMsgHeader]byte
	binary.LittleEndian.PutUint16(hdr[:2], uint16(len(msgs)))
	dst = append(dst, hdr[:2]...)
	for _, m := range msgs {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(m)))
		dst = append(dst, hdr[:]...)
		dst = append(dst, m...)
	}
	return dst
}

// splitBatch decodes a batch frame into sub-message views of frame's
// backing array, appending to msgs[:0].
func splitBatch(frame []byte, msgs [][]byte) [][]byte {
	if len(frame) < batchHeader {
		panic("core: RecvBatch on a non-batch message (frame shorter than its header)")
	}
	n := int(binary.LittleEndian.Uint16(frame))
	b := frame[batchHeader:]
	msgs = msgs[:0]
	for i := 0; i < n; i++ {
		if len(b) < batchMsgHeader {
			panic("core: RecvBatch frame truncated; sender must use SendBatch on this pair")
		}
		l := int(binary.LittleEndian.Uint32(b))
		b = b[batchMsgHeader:]
		if len(b) < l {
			panic("core: RecvBatch frame truncated; sender must use SendBatch on this pair")
		}
		msgs = append(msgs, b[:l:l])
		b = b[l:]
	}
	return msgs
}

// batchBytes reports the encoded size of a batch.
func batchBytes(msgs [][]byte) int {
	n := batchHeader + batchMsgHeader*len(msgs)
	for _, m := range msgs {
		n += len(m)
	}
	return n
}

// SendBatch coalesces msgs into one frame and sends it as a single message:
// the whole batch pays one enqueue (one PBQ slot reservation/publish, or
// one transport frame) instead of one per message.  The encoded batch must
// stay under the eager threshold — size batches to SmallMsgMax (callers
// that fill to ~N×record bytes get the amortization this exists for) — and
// at most 65535 sub-messages.  The scratch buffer is endpoint-owned, so
// steady-state batching does not allocate.
func (ep *Channel) SendBatch(msgs [][]byte) {
	if ep.dir != epSend {
		ep.badDir("SendBatch")
	}
	ep.encodeBatch(msgs)
	ep.Send(ep.batch)
}

// TrySendBatch is SendBatch under a drop policy: it sends only if the
// message can be enqueued without blocking, reporting false (with nothing
// sent) when the queue is full.  See TrySend for which paths can refuse.
func (ep *Channel) TrySendBatch(msgs [][]byte) bool {
	if ep.dir != epSend {
		ep.badDir("TrySendBatch")
	}
	ep.encodeBatch(msgs)
	return ep.TrySend(ep.batch)
}

func (ep *Channel) encodeBatch(msgs [][]byte) {
	if len(msgs) > 0xffff {
		panic(fmt.Sprintf("core: SendBatch of %d messages exceeds the 65535 limit", len(msgs)))
	}
	if n := batchBytes(msgs); ep.ch != nil && n >= ep.eagerMax {
		panic(fmt.Sprintf("core: SendBatch frame of %d bytes reaches the %d-byte eager limit; flush smaller batches",
			n, ep.eagerMax))
	}
	ep.batch = appendBatch(ep.batch[:0], msgs)
}

// RecvBatch receives one batch frame into buf (which must be able to hold
// the sender's largest frame and stay under the eager threshold) and
// returns the sub-messages as views into buf, appended to msgs[:0].  The
// views are valid until buf is reused.
func (ep *Channel) RecvBatch(buf []byte, msgs [][]byte) [][]byte {
	n := ep.Recv(buf)
	return splitBatch(buf[:n], msgs)
}

// TryRecvBatch is RecvBatch without blocking: ok reports whether a frame
// was dequeued.
func (ep *Channel) TryRecvBatch(buf []byte, msgs [][]byte) ([][]byte, bool) {
	n, ok := ep.TryRecv(buf)
	if !ok {
		return msgs[:0], false
	}
	return splitBatch(buf[:n], msgs), true
}

// TrySend sends buf without blocking if the endpoint can accept it now,
// reporting false (nothing sent, nothing counted) when it cannot.  Only the
// intra-node eager path ever refuses — a full PBQ is the runtime's
// backpressure signal, and TrySend hands that signal to the application as
// a drop-or-block decision instead of parking in sendStall.  Paths with no
// such signal (inter-node links, which buffer at the transport; rendezvous
// sizes, which hand off synchronously) behave exactly like Send and report
// true.
func (ep *Channel) TrySend(buf []byte) bool {
	if ep.dir != epSend {
		ep.badDir("TrySend")
	}
	if ep.ch == nil || len(buf) >= ep.eagerMax {
		ep.Send(buf)
		return true
	}
	if ep.ch.sendPend.head() != nil {
		// Outstanding nonblocking sends own the channel order; give them a
		// push and refuse if any are still queued.
		ep.r.progressSend(ep.ch)
		if ep.ch.sendPend.head() != nil {
			return false
		}
	}
	q := ep.q
	if q == nil {
		q = ep.bindPBQ()
	}
	if !q.TryEnqueue(buf) {
		if ep.cStalls != nil {
			ep.cStalls.Inc()
		}
		return false
	}
	r := ep.r
	r.stats.SendsEager++
	r.stats.BytesSent += int64(len(buf))
	if ep.trace != nil {
		ep.trace.Emit(obs.KSendEager, ep.peer32, int64(len(buf)))
	}
	if ep.cSends != nil {
		ep.cSends.Inc()
		ep.cSendBytes.Add(int64(len(buf)))
		ep.gDepth.Max(int64(q.Len()))
	}
	return true
}

// TryRecv receives into buf without blocking, reporting false when no
// message is ready.  It works on both intra-node (eager) and inter-node
// endpoints, which makes fan-in loops uniform: probe every source, then
// park in Rank.WaitFor on "any source ready" (see RecvReady) so the
// blocked receiver keeps stealing task chunks.
func (ep *Channel) TryRecv(buf []byte) (int, bool) {
	if ep.dir != epRecv {
		ep.badDir("TryRecv")
	}
	r := ep.r
	if ep.ch == nil {
		rc := ep.bindRemote()
		if rc.n.Load() == 0 {
			return 0, false
		}
		msg, ok := rc.tryPop()
		if !ok {
			return 0, false
		}
		if len(msg) > len(buf) {
			panic(fmt.Sprintf("core: %d-byte message overflows %d-byte receive buffer", len(msg), len(buf)))
		}
		n := copy(buf, msg)
		r.stats.RecvsRemote++
		r.stats.BytesReceived += int64(n)
		if ep.trace != nil {
			ep.trace.Emit(obs.KRecvRemote, ep.peer32, int64(n))
		}
		if ep.cRecvs != nil {
			ep.cRecvs.Inc()
			ep.cRecvBytes.Add(int64(n))
		}
		return n, true
	}
	if len(buf) >= ep.eagerMax {
		panic(fmt.Sprintf("core: TryRecv buffer of %d bytes is rendezvous-sized (eager limit %d); there is no nonblocking rendezvous receive",
			len(buf), ep.eagerMax))
	}
	if ep.ch.recvPend.head() != nil {
		// Outstanding nonblocking receives own the channel order.
		r.progressRecv(ep.ch)
		if ep.ch.recvPend.head() != nil {
			return 0, false
		}
	}
	q := ep.q
	if q == nil {
		if ep.ch.pbqOnce.Load() == nil {
			return 0, false // sender has not created the queue: nothing sent yet
		}
		q = ep.bindPBQ()
	}
	n, ok := q.TryDequeue(buf)
	if !ok {
		return 0, false
	}
	r.stats.RecvsEager++
	r.stats.BytesReceived += int64(n)
	if ep.trace != nil {
		ep.trace.Emit(obs.KRecvEager, ep.peer32, int64(n))
	}
	if ep.cRecvs != nil {
		ep.cRecvs.Inc()
		ep.cRecvBytes.Add(int64(n))
	}
	return n, true
}

// RecvReady reports whether a TryRecv would find a message now.  It is a
// cheap probe (one atomic load) meant for Rank.WaitFor conditions over
// many sources.
func (ep *Channel) RecvReady() bool {
	if ep.dir != epRecv {
		ep.badDir("RecvReady")
	}
	if ep.ch == nil {
		return ep.bindRemote().n.Load() > 0
	}
	q := ep.q
	if q == nil {
		if ep.ch.pbqOnce.Load() == nil {
			return false
		}
		q = ep.bindPBQ()
	}
	return q.Len() > 0
}

// bindRemote resolves the inter-node mailbox on the endpoint's first
// nonblocking probe (blocking remote receives go through irecv, which
// resolves its own).
func (ep *Channel) bindRemote() *remoteChannel {
	if ep.rem == nil {
		key := chanKey{src: ep.peer, dst: ep.r.id, tag: ep.tag, comm: ep.comm}
		ep.rem = ep.r.getRemote(key)
	}
	return ep.rem
}

// WaitFor parks the rank in the SSW-Loop until cond reports true.  This is
// the runtime's own blocking discipline opened to applications: between
// probes the rank steals Pure Task chunks (idle cycles become someone
// else's aggregation work), and a poisoned runtime unwinds the wait like
// any other blocking site, so a rank waiting on application state still
// honours aborts, watchdog diagnostics and dead-node detection.  cond must
// be cheap and side-effect-free on the false path — RecvReady fan-in
// probes, a counter crossing a threshold.
func (r *Rank) WaitFor(cond func() bool) {
	if cond() {
		return
	}
	r.pendRec = WaitRecord{Kind: WaitApp, Peer: -1}
	// With a real transport the condition may be completed by the link
	// reader goroutine; that wait must let the netpoller run (see waitReq).
	r.leafWaitVia(r.rt.tp != nil, cond)
}
