package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/collective"
	"repro/internal/obs"
)

// Real-runtime microbenchmarks of the core messaging and collective paths
// (the DES-based figure benches live in the repository root).
//
// The package's test init raises GOMAXPROCS for interleaving coverage; that
// oversubscribes this host's physical cores with spinning goroutines and
// turns every handoff into an OS scheduling quantum.  Benchmarks restore
// GOMAXPROCS = NumCPU so the numbers reflect the runtime, not the kernel
// scheduler.
func benchProcs(b *testing.B) {
	b.Helper()
	old := runtime.GOMAXPROCS(runtime.NumCPU())
	b.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func BenchmarkPurePingPong(b *testing.B) {
	for _, size := range []int{8, 1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchProcs(b)
			b.ReportAllocs()
			err := Run(Config{NRanks: 2}, func(r *Rank) {
				c := r.World()
				buf := make([]byte, size)
				c.Barrier()
				if r.ID() == 0 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c.Send(buf, 1, 0)
						c.Recv(buf, 1, 1)
					}
					b.StopTimer()
					b.SetBytes(int64(2 * size))
				} else {
					for i := 0; i < b.N; i++ {
						c.Recv(buf, 0, 0)
						c.Send(buf, 0, 1)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkChannelPingPong is the persistent-endpoint ping-pong: the
// endpoints are resolved once before the loop, so each iteration is purely
// the Channel.Send/Recv fast path (no per-call cache lookup or argument
// validation).  The delta against BenchmarkPurePingPong is the wrapper
// overhead Comm.Send/Recv still pays per call; the delta against the raw
// BenchmarkPBQPingPong (internal/queue) is the runtime's residual cost over
// the bare lock-free queue.  The eager sizes must report 0 allocs/op —
// scripts/verify.sh gates on it.
func BenchmarkChannelPingPong(b *testing.B) {
	for _, size := range []int{8, 1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchProcs(b)
			b.ReportAllocs()
			err := Run(Config{NRanks: 2}, func(r *Rank) {
				c := r.World()
				buf := make([]byte, size)
				peer := 1 - r.ID()
				ping := c.SendChannel(peer, 0)
				pong := c.RecvChannel(peer, 1)
				if r.ID() != 0 {
					ping, pong = c.RecvChannel(peer, 0), c.SendChannel(peer, 1)
				}
				c.Barrier()
				if r.ID() == 0 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ping.Send(buf)
						pong.Recv(buf)
					}
					b.StopTimer()
					b.SetBytes(int64(2 * size))
				} else {
					for i := 0; i < b.N; i++ {
						ping.Recv(buf)
						pong.Send(buf)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkChannelPingPongObserved is the endpoint exchange with tracing and
// metrics on.  Because the endpoint pre-resolves its counter pointers, the
// delta against BenchmarkChannelPingPong is the true recording cost (ring
// write + atomic adds), with no registry map or interface hops left on the
// path; compare the wrapper benchmarks for the pre-redesign indirection.
func BenchmarkChannelPingPongObserved(b *testing.B) {
	for _, size := range []int{8, 1 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchProcs(b)
			b.ReportAllocs()
			cfg := Config{
				NRanks:  2,
				Trace:   obs.NewTrace(2, 1<<16),
				Metrics: obs.NewMetrics(),
			}
			err := Run(cfg, func(r *Rank) {
				c := r.World()
				buf := make([]byte, size)
				peer := 1 - r.ID()
				ping := c.SendChannel(peer, 0)
				pong := c.RecvChannel(peer, 1)
				if r.ID() != 0 {
					ping, pong = c.RecvChannel(peer, 0), c.SendChannel(peer, 1)
				}
				c.Barrier()
				if r.ID() == 0 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ping.Send(buf)
						pong.Recv(buf)
					}
					b.StopTimer()
					b.SetBytes(int64(2 * size))
				} else {
					for i := 0; i < b.N; i++ {
						ping.Recv(buf)
						pong.Send(buf)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkChannelIsendIrecv measures the pooled nonblocking path: one
// outstanding Isend/Irecv pair per iteration, completed with Wait.  After
// the pools warm up this must also run at 0 allocs/op for eager payloads.
func BenchmarkChannelIsendIrecv(b *testing.B) {
	const size = 8
	benchProcs(b)
	b.ReportAllocs()
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		buf := make([]byte, size)
		peer := 1 - r.ID()
		ping := c.SendChannel(peer, 0)
		pong := c.RecvChannel(peer, 1)
		if r.ID() != 0 {
			ping, pong = c.RecvChannel(peer, 0), c.SendChannel(peer, 1)
		}
		c.Barrier()
		if r.ID() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Wait(ping.Isend(buf))
				c.Wait(pong.Irecv(buf))
			}
			b.StopTimer()
			b.SetBytes(int64(2 * size))
		} else {
			for i := 0; i < b.N; i++ {
				c.Wait(ping.Irecv(buf))
				c.Wait(pong.Isend(buf))
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPurePingPongObserved is the same exchange with the observability
// layer switched on (event tracing + metrics); the delta against
// BenchmarkPurePingPong is the enabled-mode recording cost per round trip.
func BenchmarkPurePingPongObserved(b *testing.B) {
	for _, size := range []int{8, 1 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchProcs(b)
			cfg := Config{
				NRanks:  2,
				Trace:   obs.NewTrace(2, 1<<16),
				Metrics: obs.NewMetrics(),
			}
			err := Run(cfg, func(r *Rank) {
				c := r.World()
				buf := make([]byte, size)
				c.Barrier()
				if r.ID() == 0 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c.Send(buf, 1, 0)
						c.Recv(buf, 1, 1)
					}
					b.StopTimer()
					b.SetBytes(int64(2 * size))
				} else {
					for i := 0; i < b.N; i++ {
						c.Recv(buf, 0, 0)
						c.Send(buf, 0, 1)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPurePingPongMonitored is the plain (untraced, unmetered) exchange
// with only the live monitor enabled; the delta against BenchmarkPurePingPong
// is the monitor's steady-state cost — an idle HTTP listener plus lazy
// wait-record publication — which must stay under 5%.
func BenchmarkPurePingPongMonitored(b *testing.B) {
	for _, size := range []int{8, 1 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchProcs(b)
			err := Run(Config{NRanks: 2, MonitorAddr: "127.0.0.1:0"}, func(r *Rank) {
				c := r.World()
				buf := make([]byte, size)
				c.Barrier()
				if r.ID() == 0 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c.Send(buf, 1, 0)
						c.Recv(buf, 1, 1)
					}
					b.StopTimer()
					b.SetBytes(int64(2 * size))
				} else {
					for i := 0; i < b.N; i++ {
						c.Recv(buf, 0, 0)
						c.Send(buf, 0, 1)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkPureBarrier(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%dranks", n), func(b *testing.B) {
			benchProcs(b)
			err := Run(Config{NRanks: n}, func(r *Rank) {
				c := r.World()
				c.Barrier()
				if r.ID() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					c.Barrier()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkPureAllreduce8B(b *testing.B) {
	benchProcs(b)
	const n = 4
	err := Run(Config{NRanks: n}, func(r *Rank) {
		c := r.World()
		in := f64b(float64(r.ID()))
		out := make([]byte, 8)
		c.Barrier()
		if r.ID() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			c.Allreduce(in, out, collective.OpSum, collective.Float64)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRMAPut measures the one-sided put/fence cycle between two
// co-resident ranks: one direct copy into the peer's window plus the
// fence epoch that publishes it.
func BenchmarkRMAPut(b *testing.B) {
	for _, size := range []int{8, 1 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchProcs(b)
			err := Run(Config{NRanks: 2}, func(r *Rank) {
				w := r.World().WinCreate(make([]byte, size))
				data := make([]byte, size)
				w.Fence()
				if r.ID() == 0 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						w.Put(data, 1, 0)
						w.Fence()
					}
					b.StopTimer()
					b.SetBytes(int64(size))
				} else {
					for i := 0; i < b.N; i++ {
						w.Fence()
					}
				}
				w.Free()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkShmemPut measures the intra-node symmetric-heap put: bounds
// check plus one direct copy into the co-resident target's region, with no
// request object, window epoch, or queue slot on the path.  Must report
// 0 allocs/op — scripts/verify.sh gates on it.
func BenchmarkShmemPut(b *testing.B) {
	for _, size := range []int{8, 1 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchProcs(b)
			b.ReportAllocs()
			err := Run(Config{NRanks: 2}, func(r *Rank) {
				s := r.World().ShmemCreate(1<<16, 0)
				off := s.Malloc(int64(size))
				data := make([]byte, size)
				s.Barrier()
				if r.World().Rank() == 0 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						s.Put(1, off, data)
					}
					b.StopTimer()
					b.SetBytes(int64(size))
				}
				s.Barrier()
				s.FreeHeap()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkShmemAtomicAdd measures the intra-node remote atomic: one
// hardware fetch-add on the peer's heap cell.  Must report 0 allocs/op —
// scripts/verify.sh gates on it.
func BenchmarkShmemAtomicAdd(b *testing.B) {
	benchProcs(b)
	b.ReportAllocs()
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		off := s.Malloc(8)
		s.Barrier()
		if r.World().Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AtomicAdd(1, off, 1)
			}
			b.StopTimer()
		}
		s.Barrier()
		s.FreeHeap()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShmemFetchAdd is the value-returning variant (the mailbox
// ticket-claim primitive).
func BenchmarkShmemFetchAdd(b *testing.B) {
	benchProcs(b)
	b.ReportAllocs()
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		off := s.Malloc(8)
		s.Barrier()
		if r.World().Rank() == 0 {
			var acc int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc += s.AtomicFetchAdd(1, off, 1)
			}
			b.StopTimer()
			_ = acc
		}
		s.Barrier()
		s.FreeHeap()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShmemMailboxPingPong bounces one message between two actor
// mailboxes: ring claim/fill/publish one way, blocking Recv back.
func BenchmarkShmemMailboxPingPong(b *testing.B) {
	benchProcs(b)
	b.ReportAllocs()
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		me := r.World().Rank()
		mb0 := s.NewMailbox(0, 8, 8)
		mb1 := s.NewMailbox(1, 8, 8)
		msg := make([]byte, 8)
		if me == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mb1.Send(msg)
				mb0.Recv(msg)
			}
			b.StopTimer()
		} else {
			for i := 0; i < b.N; i++ {
				mb1.Recv(msg)
				mb0.Send(msg)
			}
		}
		s.Barrier()
		s.FreeHeap()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPureTaskExecuteNoSteal(b *testing.B) {
	benchProcs(b)
	// Owner-only task dispatch cost (no thieves exist to steal).
	err := Run(Config{NRanks: 1}, func(r *Rank) {
		task := r.NewTask(16, func(start, end int64, _ any) {
			for c := start; c < end; c++ {
				_ = c
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.Execute(nil)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
