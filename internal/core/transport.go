package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/transport"
)

// Real inter-node transport glue.  When Config.Transport is set, the runtime
// runs only the ranks placed on its own node; every cross-node message —
// two-sided sends, the leader-tree collective traffic on collTag, and RMA
// frames on rmaTag — is encoded as a transport KindData frame and carried
// over the peer link's sequenced, acked, retransmitted stream.  Inbound
// frames land in the same remoteChannel mailboxes the in-process modeled
// network uses, so the receive paths (progressRemoteRecv, rmaProgress) are
// unchanged.
//
// The one shared-memory signal that cannot cross processes is the RMA
// applied watermark: with one address space the target's rmaProgress
// advances the origin's rmaFlow.applied directly.  Across processes the
// target instead ships a KindApplied frame carrying its cumulative applied
// count after each inbox drain, and the origin's replica takes the
// monotonic max.

// tpDeliver is the transport's Deliver upcall: one KindData frame for a rank
// on this node.  It runs on the owning link's reader goroutine in link
// order; the frame's payload is only valid during the call, so the mailbox
// gets a copy.  The destination rank's progress loops consume the mailbox
// exactly as they do on the modeled network.
func (rt *Runtime) tpDeliver(f *transport.Frame) {
	key := chanKey{src: int(f.SrcRank), dst: int(f.DstRank), tag: int(f.Tag), comm: f.Comm}
	v, _ := rt.remotes.LoadOrStore(key, &remoteChannel{})
	rc := v.(*remoteChannel)
	cp := make([]byte, len(f.Payload))
	copy(cp, f.Payload)
	rc.mu.lock()
	rc.msgs = append(rc.msgs, netMsg{payload: cp})
	rc.n.Add(1)
	rc.mu.unlock()
}

// tpApplied is the transport's Applied upcall: the peer's cumulative applied
// watermark for one RMA flow.  The frame travels target -> origin, so the
// flow it names is origin (f.DstRank, a rank on this node) -> target
// (f.SrcRank); its payload is the 8-byte little-endian applied total.
// Watermarks ride the same sequenced stream as data, but a reconnect replay
// may still present an older total, so the replica only moves forward.
func (rt *Runtime) tpApplied(f *transport.Frame) {
	if len(f.Payload) != 8 {
		return // malformed watermark; the retransmitted successor will carry it
	}
	applied := binary.LittleEndian.Uint64(f.Payload)
	key := chanKey{src: int(f.DstRank), dst: int(f.SrcRank), tag: rmaTag, comm: f.Comm}
	rcv, _ := rt.remotes.LoadOrStore(key, &remoteChannel{})
	v, _ := rt.rmaFlows.LoadOrStore(key, &rmaFlow{rc: rcv.(*remoteChannel)})
	flow := v.(*rmaFlow)
	for {
		cur := flow.applied.Load()
		if applied <= cur || flow.applied.CompareAndSwap(cur, applied) {
			return
		}
	}
}

// tpPeerDead is the transport's failure-detector upcall.  After this
// process's ranks have all returned the loss of a peer is not an error
// (shutdown is not synchronized across nodes); mid-run it poisons the
// runtime so every rank unwinds with a *RunError naming the dead node.
func (rt *Runtime) tpPeerDead(node int, reason string) {
	if rt.tpFinished.Load() {
		return
	}
	rt.poisonNodeDead(node, reason)
}

// tpPeerBye is the transport's departure upcall.  A graceful Bye is a peer
// whose ranks completed (benign even mid-run: its sends to us were all
// delivered first, in link order).  An abort Bye propagates the peer's
// poison immediately, without waiting out the heartbeat detector.  When the
// Bye carries the peer's dead-node list — the peer aborted because it saw
// some third node die — those nodes are the ones recorded as dead here, so
// every survivor's RunError names the node that actually failed rather
// than whichever peer happened to announce its abort first.  An empty list
// means the peer's abort had a local cause (rank panic, deadlock); then the
// departing peer itself is the lost node.
func (rt *Runtime) tpPeerBye(node int, abort bool, reason string, dead []int) {
	if !abort || rt.tpFinished.Load() {
		return
	}
	if len(dead) > 0 {
		for _, d := range dead {
			rt.poisonNodeDead(d, fmt.Sprintf("node %d reported node %d dead: %s", node, d, reason))
		}
		return
	}
	rt.poisonNodeDead(node, fmt.Sprintf("node %d aborted: %s", node, reason))
}

// tpSendData routes one cross-node payload for key over the transport,
// blocking (with poison checks) while the link's resend window is full.  On
// return the link has copied the payload into its encoded resend buffer, so
// the caller's buffer is immediately reusable — the same buffered-send
// post-time completion as the fault-free modeled network.  A dead peer
// poisons the runtime and unwinds the calling rank.
func (r *Rank) tpSendData(key chanKey, payload []byte) {
	f := transport.Frame{
		Kind:    transport.KindData,
		SrcRank: int32(key.src), DstRank: int32(key.dst),
		Tag: int32(key.tag), Comm: key.comm,
		Payload: payload,
	}
	r.tpSend(r.rt.place.NodeOf(key.dst), &f)
}

// tpSendApplied ships this rank's cumulative applied watermark for one
// incoming RMA flow back to its origin (see tpApplied for the field
// convention).
func (r *Rank) tpSendApplied(in *rmaInbox) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], in.flow.applied.Load())
	f := transport.Frame{
		Kind:    transport.KindApplied,
		SrcRank: int32(r.id), DstRank: int32(in.origin),
		Tag: rmaTag, Comm: in.comm,
		Payload: buf[:],
	}
	r.tpSend(r.rt.place.NodeOf(in.origin), &f)
}

// tpSend submits one sequenced frame, retrying through backpressure.
func (r *Rank) tpSend(dstNode int, f *transport.Frame) {
	for {
		err := r.rt.tp.Send(dstNode, f)
		switch e := err.(type) {
		case nil:
			return
		case *transport.DeadError:
			r.rt.poisonNodeDead(e.Node, e.Reason)
			r.checkPoison() // unwinds
		default:
			if err == transport.ErrBusy {
				// Resend window full: the acks that drain it arrive on the
				// netpoller, so sleep rather than yield-spin (see
				// ssw.Waiter.WaitIdle); poison unwinds us if the peer never
				// drains (the retry budget kills the link, the DeadError
				// branch fires, or another rank poisons first).
				r.checkPoison()
				time.Sleep(20 * time.Microsecond)
				continue
			}
			// ErrClosed and routing errors cannot happen from a live rank
			// (Close runs only after every local rank returned) — unless the
			// runtime is already unwinding, in which case poison wins.
			r.checkPoison()
			panic(fmt.Sprintf("core: rank %d: transport send to node %d: %v", r.id, dstNode, err))
		}
	}
}
