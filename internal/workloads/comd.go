package workloads

import (
	"repro/internal/desmodels"
)

// CoMDParams configures the CoMD skeleton (paper §5.2, Figs. 5a-5c).
// Weak scaling: per-rank work and message sizes are constant as ranks grow.
type CoMDParams struct {
	Ranks int
	Steps int
	// ForceNs is the per-step force-kernel cost per rank at perfect balance.
	ForceNs int64
	// OtherNs is the serial per-step remainder (integration, cell ops).
	OtherNs int64
	// HaloBytes is one face message's payload.
	HaloBytes int
	// PrintRate is the energy all-reduce period (steps).
	PrintRate int
	// TaskChunks chunked the force kernel when tasks are on.
	TaskChunks int
	// UseTask publishes the force kernel for stealing (Pure) or as an OMP
	// region (hybrid).
	UseTask bool

	// VoidFactor(rank) scales the rank's force work for static imbalance
	// (1 = full work; the §5.2.1 void spheres remove up to ~60%).
	VoidFactor func(rank int) float64
	// HotFactor(rank, step) scales force work dynamically (§5.2.2's moving
	// hotspot); nil means balanced.
	HotFactor func(rank, step int) float64
}

// DefaultCoMD returns the calibration used by the figure harness: force
// dominates (~85% of a step), halo messages are a few KiB, energies are
// reduced every 10 steps — the regime of CoMD's weak-scaling runs.
func DefaultCoMD(ranks, steps int) CoMDParams {
	return CoMDParams{
		Ranks:     ranks,
		Steps:     steps,
		ForceNs:   280000, // force kernel per step (dominates, ~85%)
		OtherNs:   30000,
		HaloBytes: 12288, // boundary-cell positions: rendezvous-sized

		PrintRate:  10,
		TaskChunks: 32,
	}
}

// VoidSpheres returns a VoidFactor reproducing the §5.2.1 static imbalance:
// a fraction of ranks (those whose subdomain intersects the void spheres)
// lose most of their atoms and hence most of their force work.
func VoidSpheres(ranks int) func(int) float64 {
	g := grid3(ranks)
	return func(rank int) float64 {
		c := coords3(rank, g)
		// A large void around the domain center: ranks inside lose 70% of
		// their work, ranks on the shell 35%.
		dx := float64(c[0]) - float64(g[0]-1)/2
		dy := float64(c[1]) - float64(g[1]-1)/2
		dz := float64(c[2]) - float64(g[2]-1)/2
		r2 := dx*dx + dy*dy + dz*dz
		lim := float64(g[0]*g[0]) / 16
		switch {
		case r2 <= lim:
			return 0.1 // inside the void: almost all atoms elided
		case r2 <= 3*lim:
			return 0.35
		case r2 <= 5*lim:
			return 0.7
		default:
			return 1.0
		}
	}
}

// MovingHotspot returns a HotFactor for the §5.2.2 dynamic imbalance: a
// region of inflated work cycling through the rank grid over time.
func MovingHotspot(ranks int, factor float64) func(int, int) float64 {
	g := grid3(ranks)
	return func(rank, step int) float64 {
		c := coords3(rank, g)
		// The hotspot sweeps along x, one plane per 2 steps (two planes wide
		// on grids large enough that this leaves cold ranks to steal from).
		hot := (step / 2) % g[0]
		if c[0] == hot || (g[0] > 3 && (c[0]+1)%g[0] == hot) {
			return factor
		}
		return 1.0
	}
}

// CoMD returns the skeleton program.
func CoMD(p CoMDParams) func(desmodels.VCtx) {
	g := grid3(p.Ranks)
	printRate := p.PrintRate
	if printRate <= 0 {
		printRate = 10
	}
	chunks := p.TaskChunks
	if chunks <= 0 {
		chunks = 32
	}
	return func(v desmodels.VCtx) {
		for step := 0; step < p.Steps; step++ {
			// Halo exchange of boundary atom positions.
			haloExchange3D(v, g, p.HaloBytes, 300)
			// Force kernel, scaled by the imbalance profile.
			work := float64(p.ForceNs)
			if p.VoidFactor != nil {
				work *= p.VoidFactor(v.Rank())
			}
			if p.HotFactor != nil {
				work *= p.HotFactor(v.Rank(), step)
			}
			if p.UseTask {
				v.Task(evenChunks(int64(work), chunks))
			} else {
				v.Compute(int64(work))
			}
			// Integration etc. (serial).
			v.Compute(p.OtherNs)
			// CoMD's periodic global energy reduction.
			if (step+1)%printRate == 0 {
				v.Allreduce(16)
			}
			v.StepEnd()
		}
	}
}

// CoMDHybrid derives the MPI+OpenMP variant: p.Ranks/k processes, each
// owning kx the subdomain; the force kernel is an OMP region (Task), the
// serial remainder grows kx (Amdahl), halo faces grow with the subdomain
// surface (k^(2/3)).
func CoMDHybrid(p CoMDParams, k int) (CoMDParams, int) {
	procs := p.Ranks / k
	if procs < 1 {
		procs = 1
	}
	surf := 1.0
	switch k {
	case 2:
		surf = 1.6
	case 4:
		surf = 2.5
	case 8:
		surf = 4.0
	default:
		surf = float64(k) // pessimistic fallback
	}
	h := p
	h.Ranks = procs
	h.ForceNs = p.ForceNs * int64(k)
	h.OtherNs = p.OtherNs * int64(k) // the non-OMP remainder is serialized per process
	h.HaloBytes = int(float64(p.HaloBytes) * surf)
	h.UseTask = true // the force kernel is the OMP region
	if h.TaskChunks < k {
		h.TaskChunks = 4 * k
	}
	return h, procs
}

// CoMDAMPI derives the over-decomposed AMPI variant: vp x more (smaller)
// ranks.  Work per vrank shrinks by vp; faces shrink with the finer
// subdomain surface.
func CoMDAMPI(p CoMDParams, vp int) CoMDParams {
	a := p
	a.Ranks = p.Ranks * vp
	a.ForceNs = p.ForceNs / int64(vp)
	a.OtherNs = p.OtherNs / int64(vp)
	surf := 1.0
	switch vp {
	case 2:
		surf = 0.63
	case 4:
		surf = 0.4
	}
	a.HaloBytes = int(float64(p.HaloBytes) * surf)
	a.UseTask = false
	return a
}
