package workloads

import (
	"testing"
	"testing/quick"

	"repro/internal/desmodels"
)

var costs = desmodels.Paper()

func TestGrid3Properties(t *testing.T) {
	f := func(nU uint8) bool {
		n := int(nU) + 1
		g := grid3(n)
		if g[0]*g[1]*g[2] != n {
			return false
		}
		// Round-trip every rank.
		for r := 0; r < n; r++ {
			if rank3(coords3(r, g), g) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if g := grid3(64); g != [3]int{4, 4, 4} {
		t.Errorf("grid3(64) = %v, want cubic", g)
	}
	if g := grid3(2048); g[0]*g[1]*g[2] != 2048 {
		t.Errorf("grid3(2048) = %v", g)
	}
}

func TestEvenChunksSum(t *testing.T) {
	f := func(totalU uint16, nU uint8) bool {
		total := int64(totalU)
		n := int(nU%32) + 1
		cs := evenChunks(total, n)
		var sum int64
		for _, c := range cs {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == total && len(cs) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkCostHeavyTail(t *testing.T) {
	// The tail is at (rank, iteration) granularity: some ranks are much
	// slower in a given iteration (the paper's random_work).
	var lo, hi int64 = 1 << 60, 0
	for rank := 0; rank < 64; rank++ {
		for iter := 0; iter < 16; iter++ {
			c := chunkCost(rank, iter, 0, 20000)
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
	}
	if hi < 8*lo {
		t.Fatalf("tail too flat: [%d, %d]", lo, hi)
	}
}

// runBoth runs a skeleton under MPI and Pure and returns (mpiNs, pureNs).
func runBoth(t *testing.T, n, rpn int, opts desmodels.PureOpts, prog func(desmodels.VCtx)) (int64, int64) {
	t.Helper()
	mpiT, err := desmodels.RunMPI(n, rpn, costs, prog)
	if err != nil {
		t.Fatal(err)
	}
	pureT, err := desmodels.RunPure(n, rpn, costs, opts, prog)
	if err != nil {
		t.Fatal(err)
	}
	return mpiT, pureT
}

func TestStencilSec2Shape(t *testing.T) {
	// Paper §2: 32 ranks, 1 node: ~10% from messaging, >200% with tasks.
	p := DefaultStencil(32, 10)
	mpiT, pureNoTask := runBoth(t, 32, 0, desmodels.PureOpts{}, Stencil(p))
	p.UseTask = true
	pureTask, err := desmodels.RunPure(32, 0, costs, desmodels.PureOpts{}, Stencil(p))
	if err != nil {
		t.Fatal(err)
	}
	msgGain := float64(mpiT)/float64(pureNoTask) - 1
	taskSpeedup := float64(mpiT) / float64(pureTask)
	t.Logf("stencil: mpi=%d pure=%d pure+tasks=%d (msg +%.0f%%, tasks %.2fx)",
		mpiT, pureNoTask, pureTask, msgGain*100, taskSpeedup)
	if msgGain <= 0 {
		t.Errorf("messaging-only gain %.2f%% should be positive", msgGain*100)
	}
	if taskSpeedup < 2.0 {
		t.Errorf("task speedup %.2fx, paper reports >3x (200%% speedup); want at least 2x", taskSpeedup)
	}
}

func TestDTFig4Shape(t *testing.T) {
	p, err := DTClass('A')
	if err != nil {
		t.Fatal(err)
	}
	p.Waves = 3 // trim for test speed
	n := p.Width * p.Layers
	const rpn = 40 // paper: 40 ranks/node for class A
	mpiT, pureNoTask := runBoth(t, n, rpn, desmodels.PureOpts{}, DT(p))
	pTask := p
	pTask.UseTask = true
	pureTask, err := desmodels.RunPure(n, rpn, costs, desmodels.PureOpts{}, DT(pTask))
	if err != nil {
		t.Fatal(err)
	}
	pureHelp, err := desmodels.RunPure(n, rpn, costs, desmodels.PureOpts{HelpersPerNode: 24}, DT(pTask))
	if err != nil {
		t.Fatal(err)
	}
	sMsg := float64(mpiT) / float64(pureNoTask)
	sTask := float64(mpiT) / float64(pureTask)
	sHelp := float64(mpiT) / float64(pureHelp)
	t.Logf("DT class A: mpi=%d pure=%.2fx pure+tasks=%.2fx +helpers=%.2fx", mpiT, sMsg, sTask, sHelp)
	// Paper: messaging 1.11-1.25x; tasks 1.7-2.5x; helpers push class A
	// 2.3 -> 2.6x.  Accept the shape with slack.
	if sMsg < 1.02 {
		t.Errorf("messaging-only speedup %.2f should exceed 1", sMsg)
	}
	if sTask < 1.4 {
		t.Errorf("task speedup %.2f too small for DT's imbalance", sTask)
	}
	if sHelp < sTask*0.98 {
		t.Errorf("helpers (%.2fx) should not hurt vs tasks (%.2fx)", sHelp, sTask)
	}
}

func TestCoMDFig5aShape(t *testing.T) {
	p := DefaultCoMD(64, 20)
	mpiT, pureT := runBoth(t, 64, 0, desmodels.PureOpts{}, CoMD(p))
	hp, procs := CoMDHybrid(p, 4)
	hybT, err := desmodels.RunHybrid(procs, 4, 16, costs, CoMD(hp))
	if err != nil {
		t.Fatal(err)
	}
	sPure := float64(mpiT) / float64(pureT)
	sHyb := float64(mpiT) / float64(hybT)
	t.Logf("CoMD 64 ranks: mpi=%d pure=%d (%.2fx) hybrid=%d (%.2fx)", mpiT, pureT, sPure, hybT, sHyb)
	// Paper: Pure 7-25% over MPI; hybrid UNDERperforms MPI.
	if sPure < 1.02 || sPure > 1.6 {
		t.Errorf("Pure CoMD speedup %.2f outside the paper's regime", sPure)
	}
	if sHyb >= 1.0 {
		t.Errorf("hybrid should underperform MPI, got %.2fx", sHyb)
	}
}

func TestCoMDFig5bImbalancedShape(t *testing.T) {
	p := DefaultCoMD(64, 20)
	p.VoidFactor = VoidSpheres(64)
	mpiT, err := desmodels.RunMPI(64, 0, costs, CoMD(p))
	if err != nil {
		t.Fatal(err)
	}
	pTask := p
	pTask.UseTask = true
	pureT, err := desmodels.RunPure(64, 0, costs, desmodels.PureOpts{}, CoMD(pTask))
	if err != nil {
		t.Fatal(err)
	}
	s := float64(mpiT) / float64(pureT)
	t.Logf("imbalanced CoMD: mpi=%d pure+tasks=%d speedup=%.2fx", mpiT, pureT, s)
	// Paper: 1.6-2.1x.
	if s < 1.3 {
		t.Errorf("imbalanced CoMD speedup %.2f too small", s)
	}
}

func TestCoMDFig5cDynamicWithAMPI(t *testing.T) {
	p := DefaultCoMD(16, 24)
	p.HotFactor = MovingHotspot(16, 4)
	mpiT, err := desmodels.RunMPI(16, 16, costs, CoMD(p))
	if err != nil {
		t.Fatal(err)
	}
	pTask := p
	pTask.UseTask = true
	pureT, err := desmodels.RunPure(16, 16, costs, desmodels.PureOpts{}, CoMD(pTask))
	if err != nil {
		t.Fatal(err)
	}
	// AMPI with 2 vranks/core.
	ap := CoMDAMPI(p, 2)
	ampiT, migs, err := desmodels.RunAMPI(ap.Ranks, costs, desmodels.AMPIOpts{VP: 2, CoresPerNode: 16}, CoMD(ap))
	if err != nil {
		t.Fatal(err)
	}
	sPure := float64(mpiT) / float64(pureT)
	sAMPI := float64(mpiT) / float64(ampiT)
	t.Logf("dynamic CoMD: mpi=%d pure=%d (%.2fx) ampi2vp=%d (%.2fx, %d migrations)",
		mpiT, pureT, sPure, ampiT, sAMPI, migs)
	if sPure < 1.2 {
		t.Errorf("Pure dynamic speedup %.2f too small", sPure)
	}
	// Paper: Pure beats the best AMPI by >=25%.
	if sPure < sAMPI*1.1 {
		t.Errorf("Pure (%.2fx) should beat AMPI (%.2fx)", sPure, sAMPI)
	}
}

func TestMiniAMRFig5dShape(t *testing.T) {
	p := DefaultMiniAMR(64, 30)
	mpiT, pureT := runBoth(t, 64, 0, desmodels.PureOpts{}, MiniAMR(p))
	s := float64(mpiT) / float64(pureT)
	t.Logf("miniAMR 64 ranks: mpi=%d pure=%d speedup=%.2fx", mpiT, pureT, s)
	if s < 1.02 {
		t.Errorf("Pure miniAMR speedup %.2f should exceed 1", s)
	}
}

func TestWeakScalingMonotonicity(t *testing.T) {
	// End-to-end runtime should grow (weakly) with scale under weak scaling
	// as collective depth grows.
	var prev int64
	for _, n := range []int{8, 64, 128} {
		p := DefaultCoMD(n, 10)
		tm, err := desmodels.RunMPI(n, 64, costs, CoMD(p))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("CoMD MPI n=%d: %d", n, tm)
		if tm < prev*8/10 {
			t.Errorf("runtime shrank sharply with scale: %d -> %d", prev, tm)
		}
		prev = tm
	}
}

func TestHaloExchangeNoDeadlockOddGrids(t *testing.T) {
	for _, n := range []int{2, 3, 5, 6, 12, 30} {
		p := DefaultCoMD(n, 3)
		if _, err := desmodels.RunMPI(n, 0, costs, CoMD(p)); err != nil {
			t.Errorf("n=%d mpi: %v", n, err)
		}
		if _, err := desmodels.RunPure(n, 0, costs, desmodels.PureOpts{}, CoMD(p)); err != nil {
			t.Errorf("n=%d pure: %v", n, err)
		}
	}
}
