package workloads

import (
	"math"

	"repro/internal/desmodels"
)

// MiniAMRParams configures the miniAMR skeleton (paper §5.3, Fig. 5d):
// block-structured AMR with a moving refinement object, nonblocking halo
// traffic with level-dependent payload sizes, and an all-reduce every step.
type MiniAMRParams struct {
	Ranks int
	Steps int
	// BaseStencilNs is the level-0 per-step stencil cost.
	BaseStencilNs int64
	// BaseFaceBytes is the level-0 face payload.
	BaseFaceBytes int
	// MaxLevel bounds refinement; cost scales 8^level, faces 4^level.
	MaxLevel int
	// RefineRate re-evaluates refinement every this many steps.
	RefineRate int
	// UseTask publishes the stencil for stealing.
	UseTask bool
	// TaskChunks chunk count for the stencil task.
	TaskChunks int
}

// DefaultMiniAMR returns the figure harness calibration.
func DefaultMiniAMR(ranks, steps int) MiniAMRParams {
	return MiniAMRParams{
		Ranks:         ranks,
		Steps:         steps,
		BaseStencilNs: 60000,
		BaseFaceBytes: 2048,
		MaxLevel:      2,
		RefineRate:    10,
		TaskChunks:    32,
	}
}

// amrLevel returns a rank's refinement level at a step: a spherical object
// orbits the unit cube; blocks near its surface refine.  Deterministic and
// identical across models.
func amrLevel(rank, step int, g [3]int, maxLevel int) int {
	c := coords3(rank, g)
	t := float64(step) * 0.03
	frac := func(v float64) float64 { return v - math.Floor(v) }
	ox := frac(0.3 + t)
	oy := frac(0.4 + 0.7*t)
	oz := frac(0.5 + 0.4*t)
	bx := (float64(c[0]) + 0.5) / float64(g[0])
	by := (float64(c[1]) + 0.5) / float64(g[1])
	bz := (float64(c[2]) + 0.5) / float64(g[2])
	d := math.Sqrt((bx-ox)*(bx-ox) + (by-oy)*(by-oy) + (bz-oz)*(bz-oz))
	switch {
	case d < 0.15:
		return maxLevel
	case d < 0.3:
		return max(maxLevel-1, 0)
	case d < 0.5:
		return maxLevel / 2
	default:
		return 0
	}
}

// MiniAMR returns the skeleton program.
func MiniAMR(p MiniAMRParams) func(desmodels.VCtx) {
	g := grid3(p.Ranks)
	rate := p.RefineRate
	if rate <= 0 {
		rate = 10
	}
	chunks := p.TaskChunks
	if chunks <= 0 {
		chunks = 32
	}
	return func(v desmodels.VCtx) {
		level := 0
		for step := 0; step < p.Steps; step++ {
			if step%rate == 0 {
				newLevel := amrLevel(v.Rank(), step, g, p.MaxLevel)
				if newLevel != level {
					// Resample cost proportional to the larger grid.
					bigger := max(level, newLevel)
					v.Compute(p.BaseStencilNs / 4 << bigger)
					level = newLevel
				}
				// Refinement consensus / load statistics.
				v.Allreduce(64)
			}
			// The paper's configuration showed "no significant load
			// imbalance": refinement grows cost and traffic moderately
			// (resolution rises but blocks shed work to neighbours in real
			// miniAMR's repartitioning, which we fold into the exponent).
			faceBytes := p.BaseFaceBytes << level
			haloExchange3D(v, g, faceBytes, 320)
			cost := p.BaseStencilNs << level
			if p.UseTask {
				v.Task(evenChunks(cost, chunks))
			} else {
				v.Compute(cost)
			}
			// miniAMR's per-step dt/residual all-reduce.
			v.Allreduce(8)
			v.StepEnd()
		}
	}
}
