package workloads

import (
	"repro/internal/desmodels"
)

// StencilParams configures the §2 rand-stencil skeleton (the paper's
// running example: 32 ranks on one node, ~10% gain from messaging alone and
// >200% with tasks).
type StencilParams struct {
	Ranks int
	Iters int
	// ChunksPerRank is the rand-work task's chunk count.
	ChunksPerRank int
	// MeanChunkNs is the average chunk cost; actual chunk costs are drawn
	// from a deterministic heavy-tailed hash per (rank, iter, chunk) — the
	// paper's random_work variability.
	MeanChunkNs int64
	// EdgeBytes is the neighbour edge-exchange payload (one double).
	EdgeBytes int
	// AverageNs is the serial 3-point averaging pass.
	AverageNs int64
	// UseTask publishes rand-work for stealing.
	UseTask bool
}

// DefaultStencil is the figure harness calibration for the §2 experiment.
func DefaultStencil(ranks, iters int) StencilParams {
	return StencilParams{
		Ranks:         ranks,
		Iters:         iters,
		ChunksPerRank: 32,
		MeanChunkNs:   400,
		EdgeBytes:     8,
		AverageNs:     15000,
	}
}

// chunkCost draws the per-chunk cost: a heavy-tailed per-(rank, iteration)
// factor (the paper's random_work makes some *ranks* very slow each
// iteration) with mild per-chunk jitter.
func chunkCost(rank, iter, chunk int, mean int64) int64 {
	hr := hash64(rank, iter, 0x5151)
	f := int64(1 + hr%16%6)
	if hr%16 >= 14 { // heavy tail: occasionally a rank is ~4x slower still
		f = 16
	}
	hc := hash64(rank, iter, chunk)
	jitter := int64(3 + hc%3)
	return mean * f * jitter / 4
}

// Stencil returns the skeleton program.
func Stencil(p StencilParams) func(desmodels.VCtx) {
	chunks := p.ChunksPerRank
	if chunks <= 0 {
		chunks = 32
	}
	return func(v desmodels.VCtx) {
		n := v.Size()
		for it := 0; it < p.Iters; it++ {
			cs := make([]int64, chunks)
			for i := range cs {
				cs[i] = chunkCost(v.Rank(), it, i, p.MeanChunkNs)
			}
			if p.UseTask {
				v.Task(cs)
			} else {
				var sum int64
				for _, c := range cs {
					sum += c
				}
				v.Compute(sum)
			}
			v.Compute(p.AverageNs)
			// Edge exchanges with both neighbours (non-periodic chain).
			if v.Rank() > 0 {
				exchange(v, v.Rank()-1, p.EdgeBytes, 330)
			}
			if v.Rank() < n-1 {
				exchange(v, v.Rank()+1, p.EdgeBytes, 330)
			}
			v.StepEnd()
		}
	}
}
