// Package workloads provides the DES workload skeletons that regenerate the
// paper's application figures: the same communication patterns and load
// profiles as the executable mini-apps in internal/apps, expressed as
// cost-annotated SPMD programs over the desmodels.VCtx interface so one
// skeleton produces every line of a figure (MPI, Pure, Pure+tasks,
// MPI+OpenMP, AMPI variants).
//
// Compute costs are expressed in virtual nanoseconds.  The constants in
// each skeleton's Params set the compute/communication ratio; the figure
// harness (cmd/purebench) uses defaults derived from the real mini-apps'
// measured kernel costs.
package workloads

import (
	"math"

	"repro/internal/desmodels"
)

// grid3 factors n into a near-cubic 3-D decomposition (px >= py >= pz,
// px*py*pz == n).
func grid3(n int) [3]int {
	best := [3]int{n, 1, 1}
	bestSurf := math.MaxFloat64
	for pz := 1; pz*pz*pz <= n; pz++ {
		if n%pz != 0 {
			continue
		}
		m := n / pz
		for py := pz; py*py <= m; py++ {
			if m%py != 0 {
				continue
			}
			px := m / py
			// surface-to-volume heuristic
			s := float64(px*py + py*pz + px*pz)
			if s < bestSurf {
				bestSurf = s
				best = [3]int{px, py, pz}
			}
		}
	}
	return best
}

// coords3 maps a rank to its grid coordinates.
func coords3(r int, g [3]int) [3]int {
	return [3]int{r % g[0], (r / g[0]) % g[1], r / (g[0] * g[1])}
}

// rank3 maps grid coordinates (with wraparound) to the rank.
func rank3(c [3]int, g [3]int) int {
	x := (c[0] + g[0]) % g[0]
	y := (c[1] + g[1]) % g[1]
	z := (c[2] + g[2]) % g[2]
	return (z*g[1]+y)*g[0] + x
}

// exchange swaps equal payloads with a peer, posting the receive first (the
// same nonblocking-receive-then-send pattern the real apps use).
func exchange(v desmodels.VCtx, peer, bytes, tag int) {
	if peer == v.Rank() {
		return
	}
	pr := v.Irecv(peer, bytes, tag)
	v.Send(peer, bytes, tag)
	v.Wait(pr)
}

// haloExchange3D swaps faces with all six neighbours of a 3-D decomposition:
// post all receives, send all faces, wait (the real apps' pattern).
func haloExchange3D(v desmodels.VCtx, g [3]int, bytes int, tagBase int) {
	c := coords3(v.Rank(), g)
	var pending []desmodels.Pending
	type out struct{ peer, bytes, tag int }
	var sends []out
	for axis := 0; axis < 3; axis++ {
		if g[axis] == 1 {
			continue
		}
		lo, hi := c, c
		lo[axis]--
		hi[axis]++
		loR, hiR := rank3(lo, g), rank3(hi, g)
		if loR == hiR {
			// Two ranks along this axis: both directions to one peer, with
			// direction-distinct tags.
			pending = append(pending, v.Irecv(loR, bytes, tagBase+axis))
			pending = append(pending, v.Irecv(loR, bytes, tagBase+axis+8))
			sends = append(sends, out{loR, bytes, tagBase + axis}, out{loR, bytes, tagBase + axis + 8})
			continue
		}
		pending = append(pending, v.Irecv(loR, bytes, tagBase+axis))
		pending = append(pending, v.Irecv(hiR, bytes, tagBase+axis))
		sends = append(sends, out{loR, bytes, tagBase + axis}, out{hiR, bytes, tagBase + axis})
	}
	for _, s := range sends {
		v.Send(s.peer, s.bytes, s.tag)
	}
	for _, p := range pending {
		v.Wait(p)
	}
}

// evenChunks splits total ns into n equal chunks.
func evenChunks(total int64, n int) []int64 {
	if n <= 0 {
		n = 1
	}
	cs := make([]int64, n)
	per := total / int64(n)
	for i := range cs {
		cs[i] = per
	}
	cs[n-1] += total - per*int64(n)
	return cs
}

// hash64 is the shared deterministic mixing function for pseudo-random
// per-(rank, step) load variation.
func hash64(a, b, c int) uint64 {
	h := uint64(a)*0x9E3779B97F4A7C15 ^ uint64(b)*0xBF58476D1CE4E5B9 ^ uint64(c)*0x94D049BB133111EB
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}
