package workloads

import (
	"repro/internal/apps/dt"
	"repro/internal/desmodels"
)

// DTParams configures the NAS DT (SH graph) skeleton (paper §5.1, Fig. 4).
type DTParams struct {
	Width, Layers int
	// FeatureBytes is the feature-array payload per edge message.
	FeatureBytes int
	// Waves is the number of feature waves streamed through the graph.
	Waves int
	// WorkNsUnit converts dt.WorkCost units into nanoseconds; the
	// heavy-tailed WorkCost distribution is the benchmark's "particularly
	// unwieldy" load imbalance.
	WorkNsUnit int64
	// WorkScale is dt.WorkCost's scale argument.
	WorkScale int
	// UseTask publishes the transform for stealing.
	UseTask bool
	// TaskChunks is the transform task's chunk count.
	TaskChunks int
}

// DTClass returns the skeleton parameters for a paper class (A-D, with rank
// counts 80/192/448/1024).
func DTClass(letter byte) (DTParams, error) {
	ap, err := dt.Class(letter)
	if err != nil {
		return DTParams{}, err
	}
	return DTParams{
		Width:        ap.Width,
		Layers:       ap.Layers,
		FeatureBytes: ap.FeatureLen * 8,
		Waves:        ap.Waves,
		WorkNsUnit:   2500,
		WorkScale:    ap.WorkScale,
		TaskChunks:   16,
	}, nil
}

// DT returns the skeleton program for p.Width*p.Layers ranks.
func DT(p DTParams) func(desmodels.VCtx) {
	chunks := p.TaskChunks
	if chunks <= 0 {
		chunks = 16
	}
	return func(v desmodels.VCtx) {
		w := p.Width
		layer := v.Rank() / w
		j := v.Rank() % w
		transform := func(wave int) {
			cost := int64(dt.WorkCost(v.Rank(), wave, p.WorkScale)) * p.WorkNsUnit
			if p.UseTask {
				v.Task(evenChunks(cost, chunks))
			} else {
				v.Compute(cost)
			}
		}
		sendChildren := func() {
			c1, c2 := dt.ChildrenOf(j, w)
			v.Send((layer+1)*w+c1, p.FeatureBytes, 10)
			v.Send((layer+1)*w+c2, p.FeatureBytes, 10)
		}
		recvParents := func() {
			p1, p2 := dt.ParentsOf(j, w)
			v.Recv((layer-1)*w+p1, p.FeatureBytes, 10)
			v.Recv((layer-1)*w+p2, p.FeatureBytes, 10)
		}
		for wave := 0; wave < p.Waves; wave++ {
			switch {
			case layer == 0:
				transform(wave)
				sendChildren()
			case layer < p.Layers-1:
				recvParents()
				transform(wave)
				sendChildren()
			default:
				recvParents()
				v.Compute(p.WorkNsUnit) // sink verification pass
			}
			v.StepEnd()
		}
		v.Allreduce(8) // final checksum reduction
	}
}
