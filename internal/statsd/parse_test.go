package statsd

import (
	"strconv"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		in   string
		name string
		val  float64
		typ  MetricType
		tags string
		rate float64
	}{
		{"http.req:1|c", "http.req", 1, Counter, "", 1},
		{"mem.rss:1048576|g", "mem.rss", 1048576, Gauge, "", 1},
		{"req.size:3.5|h|#env:prod,host:a", "req.size", 3.5, Histogram, "env:prod,host:a", 1},
		{"req.dur:12.25|ms|@0.5|#env:prod", "req.dur", 12.25, Timer, "env:prod", 0.5},
		{"req.dur:-4|ms|#a:b|@0.25", "req.dur", -4, Timer, "a:b", 0.25},
		{"x:+0.125|c", "x", 0.125, Counter, "", 1},
	}
	var ev Event
	for _, c := range cases {
		if err := ParseLine([]byte(c.in), &ev); err != nil {
			t.Fatalf("ParseLine(%q): %v", c.in, err)
		}
		if string(ev.Name) != c.name || ev.Value != c.val || ev.Type != c.typ ||
			string(ev.Tags) != c.tags || ev.SampleRate != c.rate {
			t.Fatalf("ParseLine(%q) = %+v (tags %q)", c.in, ev, ev.Tags)
		}
	}
}

func TestParseLineRejects(t *testing.T) {
	bad := []string{
		"", ":1|c", "name", "name:|c", "name:1", "name:1|x", "name:1|msx",
		"name:1|c|%oops", "name:1|c|@2", "name:1|c|@",
		"name:abc|c", "name:1.2.3|c", "name:1e6|c", "name:12345678901234567890|c",
		"name:1.|c",
	}
	var ev Event
	for _, in := range bad {
		if err := ParseLine([]byte(in), &ev); err == nil {
			t.Fatalf("ParseLine(%q) accepted, want error (got %+v)", in, ev)
		}
	}
}

func TestParseLineZeroAlloc(t *testing.T) {
	line := []byte("svc.req.metric_7:42|ms|#env:prod,svc:api,host:web-3,az:z1")
	var ev Event
	allocs := testing.AllocsPerRun(1000, func() {
		if err := ParseLine(line, &ev); err != nil {
			t.Fatal(err)
		}
		_ = Hash64(ev.Name)
		_ = Hash64(ev.Tags)
	})
	if allocs != 0 {
		t.Fatalf("parse+hash allocates %v/op, want 0", allocs)
	}
}

func TestHash64(t *testing.T) {
	if Hash64([]byte("abc")) != Hash64([]byte("abc")) {
		t.Fatal("Hash64 not deterministic")
	}
	seen := map[uint64]string{}
	for i := 0; i < 10000; i++ {
		s := "key-" + strconv.Itoa(i)
		h := Hash64([]byte(s))
		if prev, dup := seen[h]; dup {
			t.Fatalf("Hash64 collision between %q and %q", prev, s)
		}
		seen[h] = s
	}
	// KeyHash must distinguish a name↔tagset swap.
	if KeyHash(1, 2, Counter) == KeyHash(2, 1, Counter) {
		t.Fatal("KeyHash symmetric under name/tagset swap")
	}
	if KeyHash(1, 2, Counter) == KeyHash(1, 2, Gauge) {
		t.Fatal("KeyHash ignores metric type")
	}
}

// FuzzStatsdParse: malformed input never panics, and accepted input
// round-trips the invariants the pipeline relies on (non-empty name, a
// known type, a sane sample rate).
func FuzzStatsdParse(f *testing.F) {
	f.Add([]byte("http.req:1|c"))
	f.Add([]byte("req.dur:12.25|ms|@0.5|#env:prod,host:web-1"))
	f.Add([]byte("a:b:c:1|g|#t"))
	f.Add([]byte("x:1|h|@0.01"))
	f.Add([]byte(":::|||###@@@"))
	f.Fuzz(func(t *testing.T, line []byte) {
		var ev Event
		if err := ParseLine(line, &ev); err != nil {
			return
		}
		if len(ev.Name) == 0 {
			t.Fatalf("accepted %q with empty name", line)
		}
		if ev.Type >= nMetricTypes {
			t.Fatalf("accepted %q with type %d", line, ev.Type)
		}
		if !(ev.SampleRate > 0 && ev.SampleRate <= 1) {
			t.Fatalf("accepted %q with rate %v", line, ev.SampleRate)
		}
		_ = Hash64(ev.Name)
		_ = Hash64(ev.Tags)
	})
}
