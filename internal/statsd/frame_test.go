package statsd

import (
	"testing"
)

func mkTagset(raw string) *Tagset {
	return &Tagset{Hash: Hash64([]byte(raw)), Raw: raw}
}

func TestBatchWriterRoundTrip(t *testing.T) {
	w := NewBatchWriter()
	ts1, ts2 := mkTagset("env:prod"), mkTagset("env:dev")
	nameA, nameB := []byte("m.a"), []byte("m.b")
	hA, hB := Hash64(nameA), Hash64(nameB)

	type evt struct {
		nameH uint64
		name  []byte
		ts    *Tagset
		typ   MetricType
		val   float64
	}
	events := []evt{
		{hA, nameA, ts1, Counter, 1},
		{hA, nameA, ts1, Counter, 2},
		{hB, nameB, ts2, Timer, 12.5},
		{hA, nameA, ts2, Gauge, -3},
	}
	for _, e := range events {
		w.Add(e.nameH, e.name, e.ts, e.typ, e.val, KeyHash(e.nameH, e.ts.Hash, e.typ))
	}
	if w.Count() != len(events) {
		t.Fatalf("Count = %d", w.Count())
	}

	msgs := w.Messages(nil)
	if len(msgs) != 2 {
		t.Fatalf("Messages = %d messages, want dict+records", len(msgs))
	}
	names, tags := map[uint64]string{}, map[uint64]string{}
	if k, _ := MsgKind(msgs[0]); k != MsgDict {
		t.Fatalf("first message kind %c", k)
	}
	if err := DecodeDict(msgs[0], names, tags); err != nil {
		t.Fatal(err)
	}
	if names[hA] != "m.a" || names[hB] != "m.b" || tags[ts1.Hash] != "env:prod" || tags[ts2.Hash] != "env:dev" {
		t.Fatalf("dict decoded to %v / %v", names, tags)
	}
	payload, n, err := DecodeRecords(msgs[1])
	if err != nil || n != len(events) {
		t.Fatalf("DecodeRecords: n=%d err=%v", n, err)
	}
	var sum uint64
	for i, e := range events {
		nameH, tagH, typ, val := RecordAt(payload, i)
		if nameH != e.nameH || tagH != e.ts.Hash || typ != e.typ || val != e.val {
			t.Fatalf("record %d decoded to %d/%d/%v/%v", i, nameH, tagH, typ, val)
		}
		sum += Contribution(nameH, tagH, typ, val)
	}

	var bins [NBins]uint64
	w.Commit(&bins)
	if w.SentEvents != uint64(len(events)) || w.SentSum != sum {
		t.Fatalf("committed totals %d/%d, want %d/%d", w.SentEvents, w.SentSum, len(events), sum)
	}
	var binSum uint64
	for _, b := range bins {
		binSum += b
	}
	if binSum != sum {
		t.Fatalf("bins sum %d != contribution sum %d", binSum, sum)
	}

	// After commit the dictionary is not re-sent; records still flow.
	w.Add(hA, nameA, ts1, Counter, 5, KeyHash(hA, ts1.Hash, Counter))
	msgs = w.Messages(msgs)
	if len(msgs) != 1 {
		t.Fatalf("post-commit batch re-sent the dictionary (%d messages)", len(msgs))
	}
	if k, _ := MsgKind(msgs[0]); k != MsgRecords {
		t.Fatalf("post-commit message kind %c", k)
	}
}

func TestBatchWriterRollbackKeepsDict(t *testing.T) {
	w := NewBatchWriter()
	ts := mkTagset("env:prod")
	name := []byte("m.a")
	h := Hash64(name)
	w.Add(h, name, ts, Counter, 1, KeyHash(h, ts.Hash, Counter))
	w.Rollback() // the batch was dropped under backpressure
	if w.SentEvents != 0 || w.SentSum != 0 {
		t.Fatal("rollback leaked into committed totals")
	}

	// The dropped events are gone, but the definitions must still arrive
	// with the next successful batch.
	w.Add(h, name, ts, Counter, 2, KeyHash(h, ts.Hash, Counter))
	msgs := w.Messages(nil)
	if len(msgs) != 2 {
		t.Fatalf("%d messages after rollback, want dict+records", len(msgs))
	}
	payload, n, err := DecodeRecords(msgs[1])
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, _, _, val := RecordAt(payload, 0); val != 2 {
		t.Fatalf("rollback retained a dropped record (val %v)", val)
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	w := NewBatchWriter()
	w.SentEvents, w.SentSum = 12345, 0xdeadbeefcafe
	m := w.AppendMarker(nil, 7, true)
	round, final, ev, sum, err := DecodeMarker(m)
	if err != nil || round != 7 || !final || ev != 12345 || sum != 0xdeadbeefcafe {
		t.Fatalf("marker decoded to %d/%v/%d/%x (%v)", round, final, ev, sum, err)
	}
	if k, _ := MsgKind(m); k != MsgMarker {
		t.Fatalf("marker kind %c", k)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	for _, msg := range [][]byte{nil, {}, {'R'}, {'R', 1, 0, 0, 0}, {'M', 1}, {'D', 0, 1}, {'X', 0}} {
		if _, err := MsgKind(msg); err == nil {
			if k := msg[0]; k == 'R' {
				if _, _, err := DecodeRecords(msg); err == nil {
					t.Fatalf("DecodeRecords accepted %v", msg)
				}
			} else if k == 'M' {
				if _, _, _, _, err := DecodeMarker(msg); err == nil {
					t.Fatalf("DecodeMarker accepted %v", msg)
				}
			} else if k == 'D' {
				if err := DecodeDict(msg, map[uint64]string{}, map[uint64]string{}); err == nil {
					t.Fatalf("DecodeDict accepted %v", msg)
				}
			}
		}
	}
}

func TestAggApply(t *testing.T) {
	a := NewAgg()
	hA, hT := Hash64([]byte("m.a")), Hash64([]byte("env:prod"))
	key := KeyHash(hA, hT, Counter)
	a.Apply(key, hA, hT, Counter, 2)
	a.Apply(key, hA, hT, Counter, 3)
	gkey := KeyHash(hA, hT, Gauge)
	a.Apply(gkey, hA, hT, Gauge, 7)
	a.Apply(gkey, hA, hT, Gauge, 9)
	hkey := KeyHash(hA, hT, Timer)
	a.Apply(hkey, hA, hT, Timer, 100)

	if a.Keys != 3 || a.Count != 5 {
		t.Fatalf("keys=%d count=%d", a.Keys, a.Count)
	}
	seen := 0
	a.Each(func(k uint64, s *Series) {
		seen++
		switch k {
		case key:
			if s.Sum != 5 || s.Count != 2 {
				t.Fatalf("counter series %+v", s)
			}
		case gkey:
			if s.Last != 9 {
				t.Fatalf("gauge series %+v", s)
			}
		case hkey:
			if s.Count != 1 || s.Min != 100 || s.Max != 100 {
				t.Fatalf("timer series %+v", s)
			}
		}
	})
	if seen != 3 {
		t.Fatalf("visited %d series", seen)
	}

	want := Contribution(hA, hT, Counter, 2) + Contribution(hA, hT, Counter, 3) +
		Contribution(hA, hT, Gauge, 7) + Contribution(hA, hT, Gauge, 9) +
		Contribution(hA, hT, Timer, 100)
	var got uint64
	for _, b := range a.Bins {
		got += b
	}
	if got != want || a.Sum != want {
		t.Fatalf("bins %x sum %x, want %x", got, a.Sum, want)
	}
}

func TestAggApplySteadyStateZeroAlloc(t *testing.T) {
	a := NewAgg()
	hA, hT := Hash64([]byte("m.a")), Hash64([]byte("env:prod"))
	key := KeyHash(hA, hT, Timer)
	a.Apply(key, hA, hT, Timer, 1) // create the series
	allocs := testing.AllocsPerRun(1000, func() {
		a.Apply(key, hA, hT, Timer, 42)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Apply allocates %v/op, want 0", allocs)
	}
}

func TestGenDeterministicAndParseable(t *testing.T) {
	cfg := GenConfig{Keys: 128, ZipfS: 1.1, Seed: 42}
	g1, g2 := NewGen(cfg), NewGen(cfg)
	var ev Event
	buf := make([]byte, 0, 256)
	counts := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		l1 := g1.Next(buf[:0])
		l2 := g2.Next(make([]byte, 0, 256))
		if string(l1) != string(l2) {
			t.Fatalf("generator not deterministic at %d: %q vs %q", i, l1, l2)
		}
		if err := ParseLine(l1, &ev); err != nil {
			t.Fatalf("generated line %q does not parse: %v", l1, err)
		}
		counts[KeyHash(Hash64(ev.Name), Hash64(ev.Tags), ev.Type)]++
	}
	// Zipf skew: the most popular key must dominate a uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*5000/128 {
		t.Fatalf("hottest key got %d/5000 events; zipf skew missing", max)
	}
}

func BenchmarkStatsdParse(b *testing.B) {
	g := NewGen(GenConfig{Keys: 1024, ZipfS: 1.1})
	lines := make([][]byte, 256)
	for i := range lines {
		lines[i] = g.Next(nil)
	}
	var ev Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ParseLine(lines[i%len(lines)], &ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatsdAggregate is the steady-state aggregation path the
// verify.sh zero-alloc gate holds at exactly 0 allocs/op: hot-set intern,
// key hash, and the per-(metric,tagset) map update, per event.
func BenchmarkStatsdAggregate(b *testing.B) {
	g := NewGen(GenConfig{Keys: 1024, ZipfS: 1.1})
	lines := make([][]byte, 1024)
	for i := range lines {
		lines[i] = g.Next(nil)
	}
	it := NewInterner(4096)
	hot := NewHotSet(1024)
	agg := NewAgg()
	var ev Event
	apply := func(line []byte) {
		if err := ParseLine(line, &ev); err != nil {
			b.Fatal(err)
		}
		nameH := Hash64(ev.Name)
		ts := hot.Intern(it, Hash64(ev.Tags), ev.Tags)
		key := KeyHash(nameH, ts.Hash, ev.Type)
		agg.Apply(key, nameH, ts.Hash, ev.Type, ev.Value)
	}
	for _, line := range lines {
		apply(line) // warm: create every series off the timed path
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply(lines[i%len(lines)])
	}
}
