package statsd

import (
	"encoding/binary"
	"errors"
	"math"
)

// Wire format between ingestion and aggregation ranks.  One Channel
// SendBatch frame carries a handful of messages, each tagged by its first
// byte:
//
//	'D' dictionary   entries of [space u8][hash u64][len u16][bytes]
//	'R' records      [count u32] then count × 25-byte records
//	'M' round marker [round u32][final u8][cum events u64][cum checksum u64]
//
// A record is [name hash u64][tagset hash u64][type u8][value f64] — 25
// bytes.  Events travel as hashes only; the dictionary messages teach the
// aggregator the hash→string mapping exactly once per (destination, name |
// tagset), so the steady-state event stream never re-sends strings (the
// interned-tagset payoff on the wire).  Markers carry the link's cumulative
// committed event count and checksum, which the aggregator cross-checks
// against what it applied before every flush rollup.
const (
	MsgDict    = 'D'
	MsgRecords = 'R'
	MsgMarker  = 'M'

	// DictName/DictTagset are the dictionary-entry spaces.
	DictName   = 0
	DictTagset = 1

	recSize       = 25
	recordsHeader = 5  // kind + u32 count
	markerSize    = 22 // kind + u32 round + u8 final + u64 events + u64 sum
)

var (
	ErrShortMsg   = errors.New("statsd: truncated pipeline message")
	ErrBadMsgKind = errors.New("statsd: unknown pipeline message kind")
)

// BatchWriter accumulates records bound for one destination aggregator and
// finalizes them into coalesced frame messages.  It is single-owner (one
// ingestion rank) and recycles all of its buffers, so the steady state
// allocates nothing.
//
// Commit/Rollback make drop-policy backpressure exact: records count toward
// the link's cumulative totals only when the batch was actually enqueued,
// and dictionary bytes survive a rollback (they are definitions, not
// events — the next successful batch delivers them).
type BatchWriter struct {
	recs     []byte   // 'R' message under construction
	dict     []byte   // 'D' message under construction (may span batches)
	count    int      // records in recs
	bins     []uint16 // per-record checksum bin, parallel to recs
	contribs []uint64 // per-record checksum contribution

	sentNames map[uint64]struct{} // hashes defined on this link (incl. in-flight dict)
	sentTags  map[uint64]struct{}

	// Cumulative committed link totals, mirrored by the receiver.
	SentEvents uint64
	SentSum    uint64
}

// NewBatchWriter returns a writer for one ingester→aggregator link.
func NewBatchWriter() *BatchWriter {
	return &BatchWriter{
		sentNames: make(map[uint64]struct{}),
		sentTags:  make(map[uint64]struct{}),
	}
}

// Add appends one event record.  name is the metric-name bytes (used only
// the first time its hash is seen on this link, for the dictionary); ts is
// the interned tagset.  key is the event's KeyHash, used to bin its
// checksum contribution.
func (w *BatchWriter) Add(nameH uint64, name []byte, ts *Tagset, typ MetricType, value float64, key uint64) {
	if _, ok := w.sentNames[nameH]; !ok {
		w.sentNames[nameH] = struct{}{}
		w.dict = appendDictEntry(w.dict, DictName, nameH, name)
	}
	if _, ok := w.sentTags[ts.Hash]; !ok {
		w.sentTags[ts.Hash] = struct{}{}
		w.dict = appendDictEntry(w.dict, DictTagset, ts.Hash, []byte(ts.Raw))
	}
	if len(w.recs) == 0 {
		w.recs = append(w.recs, MsgRecords, 0, 0, 0, 0)
	}
	var rec [recSize]byte
	binary.LittleEndian.PutUint64(rec[0:], nameH)
	binary.LittleEndian.PutUint64(rec[8:], ts.Hash)
	rec[16] = byte(typ)
	binary.LittleEndian.PutUint64(rec[17:], math.Float64bits(value))
	w.recs = append(w.recs, rec[:]...)
	w.bins = append(w.bins, uint16(Bin(key)))
	w.contribs = append(w.contribs, Contribution(nameH, ts.Hash, typ, value))
	w.count++
}

func appendDictEntry(b []byte, space byte, hash uint64, s []byte) []byte {
	if len(b) == 0 {
		b = append(b, MsgDict)
	}
	var hdr [11]byte
	hdr[0] = space
	binary.LittleEndian.PutUint64(hdr[1:], hash)
	binary.LittleEndian.PutUint16(hdr[9:], uint16(len(s)))
	b = append(b, hdr[:]...)
	return append(b, s...)
}

// Count reports the records buffered since the last Commit/Rollback.
func (w *BatchWriter) Count() int { return w.count }

// PendingBytes reports the total frame payload a Messages call would emit.
func (w *BatchWriter) PendingBytes() int { return len(w.dict) + len(w.recs) }

// Messages finalizes the pending dictionary and record messages into dst
// (reusing its backing array) for a Channel SendBatch.  The writer still
// owns the returned buffers: call Commit after a successful send or
// Rollback after a dropped one before the next Add.
func (w *BatchWriter) Messages(dst [][]byte) [][]byte {
	dst = dst[:0]
	if len(w.dict) > 0 {
		dst = append(dst, w.dict)
	}
	if w.count > 0 {
		binary.LittleEndian.PutUint32(w.recs[1:], uint32(w.count))
		dst = append(dst, w.recs)
	}
	return dst
}

// Commit folds the batch into the link's cumulative totals (and the
// ingester's flush bins) after a successful send, then resets all pending
// buffers including the delivered dictionary bytes.
func (w *BatchWriter) Commit(bins *[NBins]uint64) {
	for i, c := range w.contribs {
		bins[w.bins[i]] += c
		w.SentSum += c
	}
	w.SentEvents += uint64(w.count)
	w.reset()
	w.dict = w.dict[:0]
}

// Rollback discards the batch's records after a dropped send.  Dictionary
// bytes are kept: definitions must eventually arrive even if these events
// never do.
func (w *BatchWriter) Rollback() { w.reset() }

func (w *BatchWriter) reset() {
	w.recs = w.recs[:0]
	w.bins = w.bins[:0]
	w.contribs = w.contribs[:0]
	w.count = 0
}

// AppendMarker builds a round-marker message carrying the link's cumulative
// committed totals.  Markers are sent blocking (control plane) and are
// FIFO-ordered behind every committed record batch, so when the aggregator
// sees round r's marker it has applied exactly SentEvents/SentSum.
func (w *BatchWriter) AppendMarker(buf []byte, round int, final bool) []byte {
	var m [markerSize]byte
	m[0] = MsgMarker
	binary.LittleEndian.PutUint32(m[1:], uint32(round))
	if final {
		m[5] = 1
	}
	binary.LittleEndian.PutUint64(m[6:], w.SentEvents)
	binary.LittleEndian.PutUint64(m[14:], w.SentSum)
	return append(buf[:0], m[:]...)
}

// MsgKind classifies one pipeline message.
func MsgKind(msg []byte) (byte, error) {
	if len(msg) == 0 {
		return 0, ErrShortMsg
	}
	switch msg[0] {
	case MsgDict, MsgRecords, MsgMarker:
		return msg[0], nil
	}
	return 0, ErrBadMsgKind
}

// DecodeDict merges a dictionary message into the aggregator's hash→string
// maps.  Entries are idempotent (links may re-learn after reconnects).
func DecodeDict(msg []byte, names, tagsets map[uint64]string) error {
	b := msg[1:]
	for len(b) > 0 {
		if len(b) < 11 {
			return ErrShortMsg
		}
		space := b[0]
		hash := binary.LittleEndian.Uint64(b[1:])
		n := int(binary.LittleEndian.Uint16(b[9:]))
		b = b[11:]
		if len(b) < n {
			return ErrShortMsg
		}
		switch space {
		case DictName:
			if _, ok := names[hash]; !ok {
				names[hash] = string(b[:n])
			}
		case DictTagset:
			if _, ok := tagsets[hash]; !ok {
				tagsets[hash] = string(b[:n])
			}
		default:
			return ErrBadMsgKind
		}
		b = b[n:]
	}
	return nil
}

// DecodeRecords validates a records message and returns its payload and
// record count; read individual records with RecordAt.
func DecodeRecords(msg []byte) (payload []byte, n int, err error) {
	if len(msg) < recordsHeader {
		return nil, 0, ErrShortMsg
	}
	n = int(binary.LittleEndian.Uint32(msg[1:]))
	payload = msg[recordsHeader:]
	if len(payload) != n*recSize {
		return nil, 0, ErrShortMsg
	}
	return payload, n, nil
}

// RecordAt decodes record i of a validated records payload.
func RecordAt(payload []byte, i int) (nameH, tagH uint64, typ MetricType, value float64) {
	rec := payload[i*recSize:]
	nameH = binary.LittleEndian.Uint64(rec[0:])
	tagH = binary.LittleEndian.Uint64(rec[8:])
	typ = MetricType(rec[16])
	value = math.Float64frombits(binary.LittleEndian.Uint64(rec[17:]))
	return
}

// DecodeMarker decodes a round-marker message.
func DecodeMarker(msg []byte) (round int, final bool, events, sum uint64, err error) {
	if len(msg) != markerSize {
		return 0, false, 0, 0, ErrShortMsg
	}
	round = int(binary.LittleEndian.Uint32(msg[1:]))
	final = msg[5] != 0
	events = binary.LittleEndian.Uint64(msg[6:])
	sum = binary.LittleEndian.Uint64(msg[14:])
	return
}
