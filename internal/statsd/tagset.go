package statsd

import (
	"sync/atomic"
)

// Tagset is an immutable interned tag list (the DataDog RFC's central
// object: tagsets are deduplicated once at ingestion and flow through the
// rest of the pipeline as a hash identity plus one shared string).  Two
// events carry the same Tagset pointer iff they carried byte-identical tag
// lists through the same interner.
type Tagset struct {
	Hash uint64 // Hash64 of Raw; the wire identity
	Raw  string // canonical tag bytes, e.g. "env:prod,host:web-3"
}

// Interner is a lock-free hash-consed tagset table shared by every
// ingestion rank on a node: open-addressed, power-of-two sized, each slot
// an atomic pointer CAS-published exactly once.  Slots are never updated or
// deleted — tagsets are immutable and the table is append-only, so readers
// need no fences beyond the pointer load and the loser of a first-intern
// race simply adopts the winner's pointer (the purecheck model test pins
// that convergence under every interleaving).
//
// The table is fixed-capacity on purpose: the RFC's working set is a
// slowly-changing *hot set*, so the steady state is all hits.  When the
// table fills (a tag explosion — some client minting unique tag values),
// Intern degrades gracefully: it returns a private, non-interned Tagset and
// counts the overflow, rather than growing without bound or blocking the
// ingestion path behind a resize.
type Interner struct {
	mask     uint64
	slots    []atomic.Pointer[Tagset]
	occupied atomic.Int64
	limit    int64

	hits      atomic.Int64
	misses    atomic.Int64
	overflows atomic.Int64
}

// NewInterner builds an interner with capacity rounded up to a power of
// two (minimum 16).  Inserts stop at 3/4 load so probe chains stay short.
func NewInterner(capacity int) *Interner {
	size := 16
	for size < capacity {
		size *= 2
	}
	return &Interner{
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[Tagset], size),
		limit: int64(size) - int64(size)/4,
	}
}

// Intern returns the canonical Tagset for raw (whose Hash64 the caller
// already computed).  The fast path — the tagset is already interned — is
// one probe and one atomic load.  First sight of a tagset allocates the
// immutable Tagset and CAS-publishes it; racing first-interns converge on
// whichever pointer won the CAS.
func (it *Interner) Intern(hash uint64, raw []byte) *Tagset {
	i := hash & it.mask
	for {
		schedpoint("statsd:intern:load")
		ts := it.slots[i].Load()
		if ts == nil {
			if it.occupied.Load() >= it.limit {
				break // table full: degrade to non-interned
			}
			nt := &Tagset{Hash: hash, Raw: string(raw)}
			schedpoint("statsd:intern:cas")
			if it.slots[i].CompareAndSwap(nil, nt) {
				it.occupied.Add(1)
				it.misses.Add(1)
				return nt
			}
			// Lost the publish race; reload and fall through to compare
			// against the winner (it may be our tagset or a colliding one).
			ts = it.slots[i].Load()
		}
		if ts.Hash == hash && ts.Raw == string(raw) {
			it.hits.Add(1)
			return ts
		}
		i = (i + 1) & it.mask
	}
	it.overflows.Add(1)
	return &Tagset{Hash: hash, Raw: string(raw)}
}

// Len reports how many tagsets are interned.
func (it *Interner) Len() int { return int(it.occupied.Load()) }

// Stats reports lifetime (hits, misses, overflows).
func (it *Interner) Stats() (hits, misses, overflows int64) {
	return it.hits.Load(), it.misses.Load(), it.overflows.Load()
}

// HotSet is a rank-private direct-mapped cache in front of the shared
// Interner: the RFC's observation is that the live tagset working set is
// small and slow-moving, so almost every event resolves here with zero
// atomics and zero shared-cacheline traffic.  It is single-owner and must
// not be shared between ranks.
type HotSet struct {
	mask    uint64
	entries []*Tagset

	hits, misses int64
}

// NewHotSet builds a hot-set cache with capacity rounded up to a power of
// two (minimum 16).
func NewHotSet(capacity int) *HotSet {
	size := 16
	for size < capacity {
		size *= 2
	}
	return &HotSet{mask: uint64(size - 1), entries: make([]*Tagset, size)}
}

// Intern resolves raw through the hot set, falling back to (and refilling
// from) the shared interner on a miss.  Direct-mapped: a conflicting entry
// is simply replaced, which is exactly the eviction policy a hot-set cache
// wants.
func (h *HotSet) Intern(it *Interner, hash uint64, raw []byte) *Tagset {
	i := hash & h.mask
	if ts := h.entries[i]; ts != nil && ts.Hash == hash && ts.Raw == string(raw) {
		h.hits++
		return ts
	}
	h.misses++
	ts := it.Intern(hash, raw)
	h.entries[i] = ts
	return ts
}

// Stats reports lifetime (hits, misses).
func (h *HotSet) Stats() (hits, misses int64) { return h.hits, h.misses }
