package statsd

import (
	"runtime"
	"strconv"
	"sync"
	"testing"
)

func TestInternerDedup(t *testing.T) {
	it := NewInterner(64)
	raw := []byte("env:prod,host:a")
	h := Hash64(raw)
	a := it.Intern(h, raw)
	b := it.Intern(h, raw)
	if a != b {
		t.Fatal("same tagset interned to different pointers")
	}
	if a.Raw != string(raw) || a.Hash != h {
		t.Fatalf("interned tagset %+v", a)
	}
	if it.Len() != 1 {
		t.Fatalf("Len = %d, want 1", it.Len())
	}
	hits, misses, _ := it.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestInternerHashCollision(t *testing.T) {
	// Two different raws forced onto the same hash must stay distinct
	// (linear probing on the Raw compare).
	it := NewInterner(64)
	a := it.Intern(42, []byte("a:1"))
	b := it.Intern(42, []byte("b:2"))
	if a == b {
		t.Fatal("colliding tagsets aliased")
	}
	if it.Intern(42, []byte("a:1")) != a || it.Intern(42, []byte("b:2")) != b {
		t.Fatal("collided tagsets did not re-resolve to their pointers")
	}
}

func TestInternerOverflow(t *testing.T) {
	it := NewInterner(16) // limit = 12
	var last *Tagset
	for i := 0; i < 64; i++ {
		raw := []byte("k:" + strconv.Itoa(i))
		last = it.Intern(Hash64(raw), raw)
	}
	if last == nil || last.Raw != "k:63" {
		t.Fatalf("overflow intern returned %+v", last)
	}
	if _, _, over := it.Stats(); over == 0 {
		t.Fatal("filling a 16-slot table with 64 tagsets recorded no overflows")
	}
	if it.Len() > 12 {
		t.Fatalf("interner exceeded its load limit: %d", it.Len())
	}
}

// TestInternerConcurrentFirstIntern is the -race half of the satellite-3
// coverage (the purecheck model test in internal/check explores the
// schedule space): many goroutines intern the same working set through
// private hot sets; every goroutine must converge on pointer-identical
// tagsets.
func TestInternerConcurrentFirstIntern(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		workers = 8
		keys    = 200
		rounds  = 50
	)
	it := NewInterner(1024)
	raws := make([][]byte, keys)
	hashes := make([]uint64, keys)
	for i := range raws {
		raws[i] = []byte("env:prod,host:h" + strconv.Itoa(i))
		hashes[i] = Hash64(raws[i])
	}
	got := make([][]*Tagset, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hot := NewHotSet(64)
			mine := make([]*Tagset, keys)
			for r := 0; r < rounds; r++ {
				for i := range raws {
					ts := hot.Intern(it, hashes[i], raws[i])
					if mine[i] == nil {
						mine[i] = ts
					} else if mine[i] != ts {
						panic("tagset pointer changed between interns")
					}
				}
			}
			got[w] = mine
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range raws {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d interned key %d to a different pointer", w, i)
			}
		}
	}
	if it.Len() != keys {
		t.Fatalf("interned %d distinct tagsets, want %d", it.Len(), keys)
	}
}

func TestHotSetSteadyStateZeroAlloc(t *testing.T) {
	it := NewInterner(256)
	hot := NewHotSet(256)
	raw := []byte("env:prod,svc:api,host:web-3")
	h := Hash64(raw)
	hot.Intern(it, h, raw) // warm
	allocs := testing.AllocsPerRun(1000, func() {
		if hot.Intern(it, h, raw) == nil {
			t.Fatal("nil tagset")
		}
	})
	if allocs != 0 {
		t.Fatalf("hot-set intern allocates %v/op, want 0", allocs)
	}
}
