package statsd

import (
	"math"
	"strconv"
)

// GenConfig shapes the synthetic DogStatsD traffic.
type GenConfig struct {
	// Keys is the number of distinct (metric, tagset) series (default 1024).
	Keys int
	// Metrics and Tagsets bound the distinct name and tagset pools a key
	// draws from (defaults 64 and 256) — many keys share names and tagsets,
	// like real traffic.
	Metrics int
	Tagsets int
	// ZipfS is the skew exponent of the key popularity distribution: 0 is
	// uniform; 1.2 is a realistically hot-key-heavy serving load.
	ZipfS float64
	// Seed perturbs the value stream and key order (each ingester derives
	// its own).
	Seed uint64
}

func (c *GenConfig) defaults() {
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Metrics == 0 {
		c.Metrics = 64
	}
	if c.Tagsets == 0 {
		c.Tagsets = 256
	}
}

// Gen deterministically emits DogStatsD lines with a zipf-skewed key
// popularity distribution.  All strings are precomputed, so Next costs one
// PRNG step, one binary search over the popularity CDF, and byte appends —
// the ingestion benchmark measures parsing, not generation.
type Gen struct {
	cfg   GenConfig
	rng   uint64
	cum   []float64 // popularity CDF over keys
	lines [][]byte  // per-key line prefix "name:" and suffix "|type|#tags"
	sufs  [][]byte
	seq   uint64
}

// NewGen builds a generator.
func NewGen(cfg GenConfig) *Gen {
	cfg.defaults()
	g := &Gen{cfg: cfg, rng: cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
	g.cum = make([]float64, cfg.Keys)
	total := 0.0
	for i := 0; i < cfg.Keys; i++ {
		total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		g.cum[i] = total
	}
	for i := range g.cum {
		g.cum[i] /= total
	}
	g.lines = make([][]byte, cfg.Keys)
	g.sufs = make([][]byte, cfg.Keys)
	for i := 0; i < cfg.Keys; i++ {
		// Key → (name, tagset, type): keys deliberately share names and
		// tagsets; the multiplier decorrelates the two indices.
		name := "svc.req.metric_" + strconv.Itoa(i%cfg.Metrics)
		tags := "env:prod,svc:api,host:web-" + strconv.Itoa((i*7)%cfg.Tagsets) +
			",az:z" + strconv.Itoa(i%3)
		typ := MetricType(i % int(nMetricTypes))
		g.lines[i] = []byte(name + ":")
		g.sufs[i] = []byte("|" + typ.String() + "|#" + tags)
	}
	return g
}

// Next appends one wire line to buf (typically buf[:0] of a reused buffer)
// and returns the extended slice.
func (g *Gen) Next(buf []byte) []byte {
	k := g.pick()
	g.seq++
	v := int64(g.seq*7+uint64(k)*13)%1000 + 1
	buf = append(buf, g.lines[k]...)
	buf = strconv.AppendInt(buf, v, 10)
	return append(buf, g.sufs[k]...)
}

// pick samples a key index from the zipf CDF.
func (g *Gen) pick() int {
	u := float64(g.next()>>11) / float64(1<<53)
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// next is xorshift64*.
func (g *Gen) next() uint64 {
	x := g.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.rng = x
	return x * 0x2545f4914f6cdd1d
}
