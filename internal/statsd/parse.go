// Package statsd implements the protocol layer of the DogStatsD-style
// metrics-aggregation pipeline (ROADMAP item 3): a zero-allocation wire
// parser, a lock-free hash-consed tagset interner with a per-rank hot-set
// cache (per the DataDog tagset RFC: extremely high event volumes over a
// slowly-changing hot set of tagsets), compact batched event frames with a
// hash→string dictionary side channel, per-shard aggregation state, and a
// deterministic zipf-skewed traffic generator.
//
// The Pure application that wires these pieces over ranks and channels
// lives in internal/apps/statsd; this package is runtime-free and fully
// unit-testable (including under the purecheck deterministic scheduler —
// the interner has schedpoint seams).
package statsd

import (
	"encoding/binary"
	"errors"
	"math"
)

// MetricType is the aggregation discipline of one event.
type MetricType uint8

const (
	Counter   MetricType = iota // "c": sum of values
	Gauge                       // "g": last value wins
	Histogram                   // "h": distribution of values
	Timer                       // "ms": distribution of durations
	nMetricTypes
)

func (t MetricType) String() string {
	switch t {
	case Counter:
		return "c"
	case Gauge:
		return "g"
	case Histogram:
		return "h"
	case Timer:
		return "ms"
	}
	return "?"
}

// Event is one parsed DogStatsD datagram.  Name and Tags alias the input
// line — they are valid only until the caller reuses that buffer, which is
// exactly what the ingestion hot loop wants (hash, intern, encode, move on;
// no per-event allocation).
type Event struct {
	Name       []byte // metric name, e.g. "http.request.duration"
	Tags       []byte // raw tag list, e.g. "env:prod,host:web-3"; empty when untagged
	Value      float64
	SampleRate float64 // 1 when the line carries no |@rate section
	Type       MetricType
}

// Parse errors.  All static so the error path does not allocate either
// (malformed traffic is still traffic).
var (
	ErrEmpty      = errors.New("statsd: empty line")
	ErrNoValue    = errors.New("statsd: missing ':' value separator")
	ErrNoType     = errors.New("statsd: missing '|' type separator")
	ErrBadType    = errors.New("statsd: unknown metric type")
	ErrBadValue   = errors.New("statsd: malformed value")
	ErrBadRate    = errors.New("statsd: malformed sample rate")
	ErrBadSection = errors.New("statsd: unknown '|' section")
)

// ParseLine parses one DogStatsD line
//
//	name:value|type[|@rate][|#tag1:v1,tag2:v2]
//
// into ev.  It never allocates and never panics, whatever the input (the
// FuzzStatsdParse target holds it to that).
func ParseLine(line []byte, ev *Event) error {
	if len(line) == 0 {
		return ErrEmpty
	}
	colon := indexByte(line, ':')
	if colon <= 0 {
		return ErrNoValue
	}
	ev.Name = line[:colon]
	rest := line[colon+1:]
	pipe := indexByte(rest, '|')
	if pipe < 0 {
		return ErrNoType
	}
	val, ok := parseFloat(rest[:pipe])
	if !ok {
		return ErrBadValue
	}
	ev.Value = val
	rest = rest[pipe+1:]

	// Type token runs to the next '|' or end of line.
	end := indexByte(rest, '|')
	typ := rest
	if end >= 0 {
		typ = rest[:end]
		rest = rest[end+1:]
	} else {
		rest = nil
	}
	switch {
	case len(typ) == 1 && typ[0] == 'c':
		ev.Type = Counter
	case len(typ) == 1 && typ[0] == 'g':
		ev.Type = Gauge
	case len(typ) == 1 && typ[0] == 'h':
		ev.Type = Histogram
	case len(typ) == 2 && typ[0] == 'm' && typ[1] == 's':
		ev.Type = Timer
	default:
		return ErrBadType
	}

	ev.Tags = nil
	ev.SampleRate = 1
	for len(rest) > 0 {
		sec := rest
		if end := indexByte(rest, '|'); end >= 0 {
			sec = rest[:end]
			rest = rest[end+1:]
		} else {
			rest = nil
		}
		if len(sec) == 0 {
			return ErrBadSection
		}
		switch sec[0] {
		case '#':
			ev.Tags = sec[1:]
		case '@':
			r, ok := parseFloat(sec[1:])
			if !ok || r <= 0 || r > 1 {
				return ErrBadRate
			}
			ev.SampleRate = r
		default:
			return ErrBadSection
		}
	}
	return nil
}

// indexByte is bytes.IndexByte without the import (the compiler lowers both
// to the same internal/bytealg call; keeping the package dependency-light).
func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// parseFloat parses the value grammar DogStatsD traffic actually uses —
// [+-]digits[.digits] — without the []byte→string conversion that
// strconv.ParseFloat would force (which allocates).  Exotic spellings
// (exponents, inf/nan, >18 significant digits) are rejected as malformed;
// the generator never emits them and real agents treat them as bad lines.
func parseFloat(b []byte) (float64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	switch b[0] {
	case '-':
		neg, b = true, b[1:]
	case '+':
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, false
	}
	var mant uint64
	digits := 0
	i := 0
	for ; i < len(b) && b[i] != '.'; i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		mant = mant*10 + uint64(d)
		if digits++; digits > 18 {
			return 0, false
		}
	}
	frac := 0
	if i < len(b) { // b[i] == '.'
		i++
		if i == len(b) {
			return 0, false
		}
		for ; i < len(b); i++ {
			d := b[i] - '0'
			if d > 9 {
				return 0, false
			}
			mant = mant*10 + uint64(d)
			frac++
			if digits++; digits > 18 {
				return 0, false
			}
		}
	}
	v := float64(mant)
	if frac > 0 {
		v /= pow10[frac]
	}
	if neg {
		v = -v
	}
	return v, true
}

var pow10 = [19]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18}

// Hash64 hashes b with a wyhash-style multiply–xor over 8-byte lanes.  It
// is the pipeline's single hash identity: metric names and tagsets hash
// through it on ingestion, and everything downstream — interning, sharding,
// aggregation keys, flush checksum bins — works on the 64-bit hashes alone
// (the RFC's "hash-based aggregation").
func Hash64(b []byte) uint64 {
	h := 0x9e3779b97f4a7c15 ^ uint64(len(b))*0xff51afd7ed558ccd
	for len(b) >= 8 {
		h = (h ^ mix64(binary.LittleEndian.Uint64(b))) * 0x2545f4914f6cdd1d
		b = b[8:]
	}
	if len(b) > 0 {
		var k uint64
		for i := len(b) - 1; i >= 0; i-- {
			k = k<<8 | uint64(b[i])
		}
		h = (h ^ mix64(k)) * 0x2545f4914f6cdd1d
	}
	return mix64(h)
}

// mix64 is splitmix64's finalizer: a cheap full-avalanche permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyHash combines a metric-name hash, a tagset hash and the metric type
// into the 64-bit aggregation key.  The rotation keeps name↔tagset swaps
// from colliding; the final mix spreads the key over shard and sub-shard
// bit ranges.
func KeyHash(nameH, tagH uint64, typ MetricType) uint64 {
	return mix64(nameH ^ (tagH<<17 | tagH>>47) ^ uint64(typ)*0x9e3779b97f4a7c15)
}

// Contribution is one event's flush-checksum contribution: a full-avalanche
// digest of exactly the fields the aggregator applies.  Contributions are
// summed with wraparound into per-bin totals; because addition commutes,
// any delivery order (and any sharding) of the same event multiset yields
// the same totals, so ingesters and aggregators can prove end-to-end
// exactness with a zero-sum test (see internal/apps/statsd).
func Contribution(nameH, tagH uint64, typ MetricType, value float64) uint64 {
	return mix64(nameH + (tagH<<23 | tagH>>41) + uint64(typ)*0xff51afd7ed558ccd +
		math.Float64bits(value)*0x2545f4914f6cdd1d)
}

// NBins is the flush-vector checksum bin count.  A key's bin is keyed off
// KeyHash so every (metric, tagset, type) series lands in a stable bin;
// 256 bins × 8 bytes on each of the verify and snapshot halves pushes the
// flush vector past Config.SPTDMax, routing the rollup through the SPTD
// partitioned reducer — the intended path for production-sized snapshots.
const NBins = 256

// Bin maps an aggregation key to its flush-vector bin.
func Bin(key uint64) int { return int(key >> 56) }
