//go:build !purecheck

package statsd

// schedpoint is the deterministic concurrency checker's scheduling seam: the
// production build compiles it to nothing (the call inlines away), while the
// purecheck build hands control to the checker at each labeled point.  See
// internal/check.
func schedpoint(label string) {}
