package statsd

import "math"

// Series is the aggregated state of one (metric, tagset, type) key.  All
// four metric types share the struct — the per-event switch stays branchy
// but allocation-free, and a 0-alloc steady state matters more here than a
// few bytes per live series.
type Series struct {
	NameH, TagH uint64
	Type        MetricType

	Count    int64   // events applied
	Sum      float64 // counters: the value; histograms/timers: sum for avg
	Last     float64 // gauges: last write wins (per-link FIFO order)
	Min, Max float64

	// Buckets is a power-of-two magnitude histogram over |value| for the
	// distribution types: bucket i holds values in [2^(i-1), 2^i).
	Buckets [nBuckets]int64
}

// nBuckets is the magnitude-histogram resolution.
const nBuckets = 16

// seriesBlock is the Agg's slab allocator: series are carved from blocks of
// this many so a growing keyspace costs one allocation per block, and the
// steady state (all keys seen) costs none.
const seriesBlock = 256

// Agg is one sub-shard's aggregation state, owned by whichever goroutine
// the task scheduler hands the sub-shard to (sub-shards are disjoint, so a
// stolen chunk touches nothing another chunk touches).
type Agg struct {
	m     map[uint64]*Series
	slab  []Series
	Keys  int
	Count uint64 // events applied

	// Bins accumulates applied checksum contributions per flush bin —
	// the aggregator-side half of the pipeline's zero-sum exactness proof.
	Bins [NBins]uint64
	Sum  uint64 // total applied contribution (cross-checked against markers)
}

// NewAgg returns an empty sub-shard aggregate.
func NewAgg() *Agg { return &Agg{m: make(map[uint64]*Series)} }

// Apply folds one event into the aggregate.  Steady state (series exists)
// performs one map lookup and field updates — no allocation; a new series
// takes a slot from the slab.
func (a *Agg) Apply(key, nameH, tagH uint64, typ MetricType, value float64) {
	s := a.m[key]
	if s == nil {
		if len(a.slab) == 0 {
			a.slab = make([]Series, seriesBlock)
		}
		s = &a.slab[0]
		a.slab = a.slab[1:]
		*s = Series{NameH: nameH, TagH: tagH, Type: typ,
			Min: math.Inf(1), Max: math.Inf(-1)}
		a.m[key] = s
		a.Keys++
	}
	s.Count++
	if value < s.Min {
		s.Min = value
	}
	if value > s.Max {
		s.Max = value
	}
	switch typ {
	case Counter:
		s.Sum += value
	case Gauge:
		s.Last = value
	case Histogram, Timer:
		s.Sum += value
		s.Buckets[bucketOf(value)]++
	}
	a.Count++
	c := Contribution(nameH, tagH, typ, value)
	a.Bins[Bin(key)] += c
	a.Sum += c
}

// bucketOf maps |v| to its power-of-two magnitude bucket.
func bucketOf(v float64) int {
	if v < 0 {
		v = -v
	}
	b := 0
	for v >= 1 && b < nBuckets-1 {
		v /= 2
		b++
	}
	return b
}

// Each visits every live series (flush reporting; not on the hot path).
func (a *Agg) Each(fn func(key uint64, s *Series)) {
	for k, s := range a.m {
		fn(k, s)
	}
}
