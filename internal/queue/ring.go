// Package queue provides the lock-free single-producer/single-consumer
// structures at the heart of Pure's intra-node messaging (paper §4.1):
//
//   - PBQ: the PureBufferQueue, a circular queue of fixed, cacheline-aligned
//     payload slots used for short messages (two-copy, buffered protocol);
//   - Ring[T]: a generic SPSC ring used for rendezvous envelopes (the
//     receiver's posted buffer metadata) and completion notifications
//     (byte counts) for large messages (one-copy protocol).
//
// All queues synchronize exclusively through sync/atomic index publication.
// The producer writes a slot and then atomically advances the tail; the
// consumer atomically loads the tail before reading the slot and advances the
// head after it is done.  Go's memory model makes each atomic store/load pair
// a happens-before edge, which is strictly stronger than the C++
// acquire-release the paper relies on, so the same single-owner slot
// discipline is sound here.
package queue

import (
	"fmt"
	"sync/atomic"
)

// CachelineBytes is the coherence granularity the queues pad to.  64 bytes
// matches the Haswell nodes in the paper and every mainstream x86/arm64 part.
const CachelineBytes = 64

// pad is inserted between producer-owned and consumer-owned fields so the
// head and tail indices never share a cacheline (avoiding the false sharing
// the paper calls out as a key performance driver).
type pad [CachelineBytes]byte

// Ring is a bounded lock-free single-producer/single-consumer ring of values.
// The zero value is not usable; construct with NewRing.  Exactly one
// goroutine may call TryPush and exactly one may call TryPop.
type Ring[T any] struct {
	mask  uint64
	slots []T

	_    pad
	head atomic.Uint64 // next index to pop; owned by the consumer
	_    pad
	tail atomic.Uint64 // next index to push; owned by the producer
	_    pad
}

// NewRing creates a ring with capacity for at least minSlots values
// (rounded up to a power of two).
func NewRing[T any](minSlots int) *Ring[T] {
	if minSlots <= 0 {
		panic(fmt.Sprintf("queue: ring capacity must be positive, got %d", minSlots))
	}
	n := 1
	for n < minSlots {
		n <<= 1
	}
	return &Ring[T]{mask: uint64(n - 1), slots: make([]T, n)}
}

// Cap returns the ring's slot count.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Len returns the number of buffered values.  It is exact only when called
// by the producer or consumer; other callers get a snapshot, clamped to
// [0, Cap] (the head is loaded first, so a concurrent push/pop pair between
// the two loads inflates rather than underflows the difference).
func (r *Ring[T]) Len() int {
	schedpoint("ring:len:load-head")
	h := r.head.Load()
	schedpoint("ring:len:load-tail")
	n := r.tail.Load() - h
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	return int(n)
}

// TryPush appends v and reports whether space was available.
func (r *Ring[T]) TryPush(v T) bool {
	schedpoint("ring:push:load-tail")
	t := r.tail.Load()
	schedpoint("ring:push:load-head")
	if t-r.head.Load() >= uint64(len(r.slots)) {
		return false // full
	}
	schedpoint("ring:push:write-slot")
	r.slots[t&r.mask] = v
	schedpoint("ring:push:publish")
	r.tail.Store(t + 1)
	return true
}

// TryPop removes the oldest value and reports whether one was available.
func (r *Ring[T]) TryPop() (v T, ok bool) {
	schedpoint("ring:pop:load-head")
	h := r.head.Load()
	schedpoint("ring:pop:load-tail")
	if h == r.tail.Load() {
		return v, false // empty
	}
	idx := h & r.mask
	schedpoint("ring:pop:read-slot")
	v = r.slots[idx]
	var zero T
	r.slots[idx] = zero // drop references so payload buffers can be collected
	schedpoint("ring:pop:release")
	r.head.Store(h + 1)
	return v, true
}

// Peek returns the oldest value without removing it.
func (r *Ring[T]) Peek() (v T, ok bool) {
	schedpoint("ring:peek:load-head")
	h := r.head.Load()
	schedpoint("ring:peek:load-tail")
	if h == r.tail.Load() {
		return v, false
	}
	return r.slots[h&r.mask], true
}
