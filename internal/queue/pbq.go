package queue

import (
	"fmt"
	"sync/atomic"
)

// PBQ is the PureBufferQueue: the lock-free SPSC circular queue Pure uses
// for short intra-node messages (paper §4.1.1).  A single contiguous buffer
// stores all message slots; each slot's stride is rounded up to a cacheline
// multiple so the writing sender and reading receiver never false-share.
//
// The protocol is the classic two-copy buffered ("eager") scheme: the sender
// copies its message into a free slot and publishes it by advancing the tail;
// the receiver copies the message out and releases the slot by advancing the
// head.  Once Enqueue returns, the sender may immediately reuse its buffer.
//
// Exactly one goroutine may produce and one may consume.
type PBQ struct {
	slotStride int    // bytes per slot, cacheline multiple
	maxPayload int    // usable payload bytes per slot
	mask       uint64 // slot-count mask (power of two)
	lens       []int32
	buf        []byte

	_      pad
	head   atomic.Uint64 // consumer-owned
	_      pad
	tail   atomic.Uint64 // producer-owned
	_      pad
	stalls atomic.Int64 // failed (queue-full) enqueue attempts, for observability
	_      pad
}

// NewPBQ builds a PureBufferQueue with at least minSlots slots (rounded up to
// a power of two), each able to carry maxPayload bytes.  The paper's default
// is a handful of slots of up to 8 KiB; the slot count was "not a material
// performance driver" (we ablate this in the benchmarks).
func NewPBQ(minSlots, maxPayload int) *PBQ {
	if minSlots <= 0 || maxPayload <= 0 {
		panic(fmt.Sprintf("queue: NewPBQ(%d, %d): both arguments must be positive", minSlots, maxPayload))
	}
	n := 1
	for n < minSlots {
		n <<= 1
	}
	stride := (maxPayload + CachelineBytes - 1) / CachelineBytes * CachelineBytes
	return &PBQ{
		slotStride: stride,
		maxPayload: maxPayload,
		mask:       uint64(n - 1),
		lens:       make([]int32, n),
		buf:        make([]byte, n*stride),
	}
}

// Cap returns the number of message slots.
func (q *PBQ) Cap() int { return len(q.lens) }

// MaxPayload returns the largest message the queue accepts.
func (q *PBQ) MaxPayload() int { return q.maxPayload }

// Len returns the number of buffered messages.  Safe for any observer
// goroutine: the head is loaded before the tail and the difference is
// clamped to [0, Cap], so a snapshot taken while both endpoints advance can
// never report a negative or over-capacity depth.  (Loading the tail first
// could see a head that had already passed it, underflowing the unsigned
// difference — a torn read the deterministic checker exhibits; see
// internal/check's PBQ observer model test.)
func (q *PBQ) Len() int {
	schedpoint("pbq:len:load-head")
	h := q.head.Load()
	schedpoint("pbq:len:load-tail")
	t := q.tail.Load()
	// The tail never trails the head, and h is the older snapshot, so t >= h
	// always; but both endpoints may have advanced between the two loads, so
	// the difference is capped at the slot count.
	n := t - h
	if n > q.mask+1 {
		n = q.mask + 1
	}
	return int(n)
}

// Stalls returns how many TryEnqueue calls found the queue full — the
// backpressure signal the observability layer exports as a metric.  Note a
// single logical send that spins on a full queue counts one stall per retry.
func (q *PBQ) Stalls() int64 { return q.stalls.Load() }

// TryEnqueue copies msg into the queue and reports whether a slot was free.
// It panics if msg exceeds MaxPayload; the runtime routes such messages to
// the rendezvous path instead.
func (q *PBQ) TryEnqueue(msg []byte) bool {
	if len(msg) > q.maxPayload {
		panic(fmt.Sprintf("queue: message of %d bytes exceeds PBQ payload limit %d", len(msg), q.maxPayload))
	}
	schedpoint("pbq:enq:load-tail")
	t := q.tail.Load()
	schedpoint("pbq:enq:load-head")
	if t-q.head.Load() > q.mask {
		q.stalls.Add(1)
		return false // full
	}
	slot := int(t&q.mask) * q.slotStride
	schedpoint("pbq:enq:write-slot")
	copy(q.buf[slot:slot+len(msg)], msg)
	q.lens[t&q.mask] = int32(len(msg))
	schedpoint("pbq:enq:publish")
	q.tail.Store(t + 1) // publish: everything written above happens-before the consumer's load
	return true
}

// TryDequeue copies the oldest message into dst and returns its length.
// ok is false when the queue is empty.  dst must be at least as large as the
// buffered message (message semantics, like MPI_Recv: a too-small buffer is
// a program error and panics rather than truncating silently).
func (q *PBQ) TryDequeue(dst []byte) (n int, ok bool) {
	schedpoint("pbq:deq:load-head")
	h := q.head.Load()
	schedpoint("pbq:deq:load-tail")
	if h == q.tail.Load() {
		return 0, false // empty
	}
	idx := h & q.mask
	schedpoint("pbq:deq:read-slot")
	n = int(q.lens[idx])
	if n > len(dst) {
		panic(fmt.Sprintf("queue: receive buffer of %d bytes too small for %d-byte message", len(dst), n))
	}
	slot := int(idx) * q.slotStride
	copy(dst[:n], q.buf[slot:slot+n])
	schedpoint("pbq:deq:release")
	q.head.Store(h + 1) // release the slot to the producer
	return n, true
}

// PeekLen returns the length of the oldest buffered message without
// consuming it.  ok is false when the queue is empty.  Receivers use this to
// size probe-style operations.
func (q *PBQ) PeekLen() (n int, ok bool) {
	schedpoint("pbq:peek:load-head")
	h := q.head.Load()
	schedpoint("pbq:peek:load-tail")
	if h == q.tail.Load() {
		return 0, false
	}
	return int(q.lens[h&q.mask]), true
}

// Envelope is the receiver-posted metadata for a rendezvous (large-message)
// transfer (paper §4.1.2): where the payload should land and how many bytes
// the receiver is prepared to accept.
type Envelope struct {
	Dest []byte // receiver's destination buffer (len = capacity in bytes)
	Seq  uint64 // receiver-assigned sequence, echoed on the completion queue
}

// Completion is the sender's notification that a rendezvous transfer
// finished: how many bytes were written into the envelope's buffer.
type Completion struct {
	Bytes int
	Seq   uint64
}

// RendezvousChannel pairs the two SPSC rings of the large-message protocol.
// The receiver posts Envelopes; the sender pops an envelope, copies the
// payload directly into Envelope.Dest (the single copy), and pushes a
// Completion; the receiver pops the completion to learn the byte count.
type RendezvousChannel struct {
	Envelopes   *Ring[Envelope]
	Completions *Ring[Completion]
}

// NewRendezvousChannel builds a rendezvous channel with the given depth
// (how many receives may be posted before the receiver must drain
// completions).
func NewRendezvousChannel(depth int) *RendezvousChannel {
	return &RendezvousChannel{
		Envelopes:   NewRing[Envelope](depth),
		Completions: NewRing[Completion](depth),
	}
}

// NewPBQPacked builds a PureBufferQueue whose slots are packed back-to-back
// with no cacheline padding.  The paper identifies avoiding false sharing as
// one of the three key drivers of messaging performance; this constructor
// exists so the claim can be measured (BenchmarkAblationFalseSharing) — do
// not use it for real channels.
func NewPBQPacked(minSlots, maxPayload int) *PBQ {
	if minSlots <= 0 || maxPayload <= 0 {
		panic(fmt.Sprintf("queue: NewPBQPacked(%d, %d): both arguments must be positive", minSlots, maxPayload))
	}
	n := 1
	for n < minSlots {
		n <<= 1
	}
	return &PBQ{
		slotStride: maxPayload,
		maxPayload: maxPayload,
		mask:       uint64(n - 1),
		lens:       make([]int32, n),
		buf:        make([]byte, n*maxPayload),
	}
}
