package queue

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingBasic(t *testing.T) {
	r := NewRing[int](3) // rounds to 4
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded on full ring")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if v, ok := r.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %d,%v want 0,true", v, ok)
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[string](2)
	for round := 0; round < 100; round++ {
		s := fmt.Sprintf("msg-%d", round)
		if !r.TryPush(s) {
			t.Fatalf("push %d failed", round)
		}
		got, ok := r.TryPop()
		if !ok || got != s {
			t.Fatalf("round %d: got %q,%v", round, got, ok)
		}
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

// Property: an SPSC ring delivers every value exactly once, in FIFO order,
// under concurrent produce/consume.
func TestRingConcurrentFIFO(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 100000
	r := NewRing[uint64](16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if r.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for want := uint64(0); want < n; {
		if v, ok := r.TryPop(); ok {
			if v != want {
				t.Fatalf("out of order: got %d, want %d", v, want)
			}
			want++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if _, ok := r.TryPop(); ok {
		t.Fatal("ring not empty after draining")
	}
}

func TestPBQBasic(t *testing.T) {
	q := NewPBQ(4, 256)
	if q.Cap() != 4 || q.MaxPayload() != 256 {
		t.Fatalf("Cap/MaxPayload = %d/%d, want 4/256", q.Cap(), q.MaxPayload())
	}
	msg := []byte("hello pure")
	if !q.TryEnqueue(msg) {
		t.Fatal("enqueue failed on empty queue")
	}
	if n, ok := q.PeekLen(); !ok || n != len(msg) {
		t.Fatalf("PeekLen = %d,%v", n, ok)
	}
	dst := make([]byte, 256)
	n, ok := q.TryDequeue(dst)
	if !ok || n != len(msg) || !bytes.Equal(dst[:n], msg) {
		t.Fatalf("dequeue got %q (%d,%v)", dst[:n], n, ok)
	}
	if _, ok := q.TryDequeue(dst); ok {
		t.Fatal("dequeue on empty queue succeeded")
	}
	if _, ok := q.PeekLen(); ok {
		t.Fatal("PeekLen on empty queue succeeded")
	}
}

func TestPBQZeroLengthMessage(t *testing.T) {
	q := NewPBQ(2, 64)
	if !q.TryEnqueue(nil) {
		t.Fatal("enqueue of empty message failed")
	}
	n, ok := q.TryDequeue(make([]byte, 1))
	if !ok || n != 0 {
		t.Fatalf("dequeue = %d,%v want 0,true", n, ok)
	}
}

func TestPBQFull(t *testing.T) {
	q := NewPBQ(2, 16)
	for i := 0; i < 2; i++ {
		if !q.TryEnqueue([]byte{byte(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.TryEnqueue([]byte{9}) {
		t.Fatal("enqueue succeeded on full queue")
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestPBQSenderBufferReusableAfterEnqueue(t *testing.T) {
	q := NewPBQ(2, 16)
	buf := []byte{1, 2, 3}
	q.TryEnqueue(buf)
	buf[0] = 99 // sender may reuse its buffer immediately (MPI buffered-send semantics)
	dst := make([]byte, 16)
	n, _ := q.TryDequeue(dst)
	if dst[0] != 1 || n != 3 {
		t.Fatalf("message corrupted by sender reuse: % x", dst[:n])
	}
}

func TestPBQPanicsOnOversizedMessage(t *testing.T) {
	q := NewPBQ(2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized enqueue did not panic")
		}
	}()
	q.TryEnqueue(make([]byte, 9))
}

func TestPBQPanicsOnSmallRecvBuffer(t *testing.T) {
	q := NewPBQ(2, 8)
	q.TryEnqueue(make([]byte, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("undersized dequeue did not panic")
		}
	}()
	q.TryDequeue(make([]byte, 4))
}

func TestPBQPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPBQ(0,0) did not panic")
		}
	}()
	NewPBQ(0, 0)
}

// Property: round-tripping arbitrary payloads through a PBQ preserves bytes.
func TestPBQRoundTripProperty(t *testing.T) {
	q := NewPBQ(8, 1024)
	dst := make([]byte, 1024)
	f := func(msgs [][]byte) bool {
		for _, m := range msgs {
			if len(m) > 1024 {
				m = m[:1024]
			}
			if !q.TryEnqueue(m) {
				// queue full: drain one and retry
				if _, ok := q.TryDequeue(dst); !ok {
					return false
				}
				if !q.TryEnqueue(m) {
					return false
				}
			}
		}
		// Drain everything; each message must match FIFO order of enqueues
		// still buffered.  (We only verify byte integrity here; FIFO order is
		// covered by the concurrent test.)
		for {
			if _, ok := q.TryDequeue(dst); !ok {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent stress: every message arrives exactly once, in order, intact.
func TestPBQConcurrentIntegrity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 20000
	q := NewPBQ(8, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		msg := make([]byte, 64)
		for i := 0; i < n; {
			sz := 1 + i%64
			for b := 0; b < sz; b++ {
				msg[b] = byte(i + b)
			}
			if q.TryEnqueue(msg[:sz]) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	dst := make([]byte, 64)
	for i := 0; i < n; {
		nb, ok := q.TryDequeue(dst)
		if !ok {
			runtime.Gosched()
			continue
		}
		wantSz := 1 + i%64
		if nb != wantSz {
			t.Fatalf("message %d: size %d, want %d", i, nb, wantSz)
		}
		for b := 0; b < nb; b++ {
			if dst[b] != byte(i+b) {
				t.Fatalf("message %d corrupt at byte %d", i, b)
			}
		}
		i++
	}
	wg.Wait()
}

func TestRendezvousChannelProtocol(t *testing.T) {
	ch := NewRendezvousChannel(4)
	// Receiver posts a 1 MiB buffer.
	dst := make([]byte, 1<<20)
	if !ch.Envelopes.TryPush(Envelope{Dest: dst, Seq: 7}) {
		t.Fatal("posting envelope failed")
	}
	// Sender claims it, copies payload (single copy), signals completion.
	env, ok := ch.Envelopes.TryPop()
	if !ok || env.Seq != 7 {
		t.Fatalf("sender got env %+v, %v", env, ok)
	}
	payload := bytes.Repeat([]byte{0xAB}, 1<<19)
	n := copy(env.Dest, payload)
	if !ch.Completions.TryPush(Completion{Bytes: n, Seq: env.Seq}) {
		t.Fatal("pushing completion failed")
	}
	// Receiver observes completion and the payload is in place.
	c, ok := ch.Completions.TryPop()
	if !ok || c.Bytes != 1<<19 || c.Seq != 7 {
		t.Fatalf("completion = %+v, %v", c, ok)
	}
	if dst[0] != 0xAB || dst[(1<<19)-1] != 0xAB {
		t.Fatal("payload not delivered into receiver buffer")
	}
}

func TestRingDropsReferencesOnPop(t *testing.T) {
	r := NewRing[[]byte](2)
	r.TryPush(make([]byte, 10))
	r.TryPop()
	// The slot should no longer pin the buffer.  We can't assert GC behavior
	// directly; instead verify the slot was zeroed via a second push/pop of nil.
	r.TryPush(nil)
	v, ok := r.TryPop()
	if !ok || v != nil {
		t.Fatalf("got %v, %v", v, ok)
	}
}

func BenchmarkPBQPingPong(b *testing.B) {
	for _, size := range []int{8, 64, 1024, 8192} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			q1 := NewPBQ(8, size) // ping
			q2 := NewPBQ(8, size) // pong
			msg := make([]byte, size)
			done := make(chan struct{})
			go func() {
				dst := make([]byte, size)
				for i := 0; i < b.N; i++ {
					for {
						if _, ok := q1.TryDequeue(dst); ok {
							break
						}
						runtime.Gosched()
					}
					for !q2.TryEnqueue(dst) {
						runtime.Gosched()
					}
				}
				close(done)
			}()
			dst := make([]byte, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !q1.TryEnqueue(msg) {
					runtime.Gosched()
				}
				for {
					if _, ok := q2.TryDequeue(dst); ok {
						break
					}
					runtime.Gosched()
				}
			}
			<-done
			b.SetBytes(int64(size))
		})
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing[uint64](64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(uint64(i))
		r.TryPop()
	}
}

func TestPBQPackedBehavesIdentically(t *testing.T) {
	q := NewPBQPacked(4, 64)
	msg := []byte("packed slots")
	if !q.TryEnqueue(msg) {
		t.Fatal("enqueue failed")
	}
	dst := make([]byte, 64)
	n, ok := q.TryDequeue(dst)
	if !ok || string(dst[:n]) != "packed slots" {
		t.Fatalf("got %q", dst[:n])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewPBQPacked(0,0) did not panic")
		}
	}()
	NewPBQPacked(0, 0)
}

// Ablation: cacheline-padded vs packed slot layout under concurrent
// producer/consumer (the false-sharing driver the paper calls out).
func BenchmarkAblationFalseSharing(b *testing.B) {
	run := func(b *testing.B, q *PBQ) {
		msg := make([]byte, 32)
		done := make(chan struct{})
		go func() {
			dst := make([]byte, 32)
			for i := 0; i < b.N; i++ {
				for {
					if _, ok := q.TryDequeue(dst); ok {
						break
					}
					runtime.Gosched()
				}
			}
			close(done)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !q.TryEnqueue(msg) {
				runtime.Gosched()
			}
		}
		<-done
	}
	b.Run("padded", func(b *testing.B) { run(b, NewPBQ(16, 32)) })
	b.Run("packed", func(b *testing.B) { run(b, NewPBQPacked(16, 32)) })
}
