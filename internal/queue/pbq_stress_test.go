package queue

import (
	"encoding/binary"
	"runtime"
	"testing"
)

// TestPBQWraparoundBackpressure drives a tiny queue through thousands of
// head/tail wraparounds with the producer persistently ahead of the consumer,
// so the full-queue backpressure path (TryEnqueue returning false) is hit
// constantly.  Every payload carries its sequence number plus a
// sequence-derived fill pattern, so a slot reused before the consumer drained
// it — the classic wraparound bug — shows up as a corrupt or out-of-order
// message.  Run under -race this also checks the SPSC publication protocol.
func TestPBQWraparoundBackpressure(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	const (
		slots      = 4
		maxPayload = 64
		total      = 200_000 // 50_000x the capacity: many wraparounds
	)
	q := NewPBQ(slots, maxPayload)

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, maxPayload)
		for i := 0; i < total; i++ {
			// Vary length so slot payload regions shift every message.
			n := 8 + i%(maxPayload-8)
			binary.LittleEndian.PutUint64(buf[:8], uint64(i))
			fill := byte(i)
			for j := 8; j < n; j++ {
				buf[j] = fill
			}
			for !q.TryEnqueue(buf[:n]) {
				runtime.Gosched()
			}
		}
	}()

	dst := make([]byte, maxPayload)
	for i := 0; i < total; i++ {
		var n int
		var ok bool
		for {
			if n, ok = q.TryDequeue(dst); ok {
				break
			}
			runtime.Gosched()
		}
		wantN := 8 + i%(maxPayload-8)
		if n != wantN {
			t.Fatalf("message %d: length %d, want %d", i, n, wantN)
		}
		if got := binary.LittleEndian.Uint64(dst[:8]); got != uint64(i) {
			t.Fatalf("message %d: sequence %d (out of order or corrupt)", i, got)
		}
		for j := 8; j < n; j++ {
			if dst[j] != byte(i) {
				t.Fatalf("message %d: payload byte %d = %#x, want %#x", i, j, dst[j], byte(i))
			}
		}
	}
	<-done

	if _, ok := q.TryDequeue(dst); ok {
		t.Fatal("queue not empty after all messages consumed")
	}
	// With 50_000x more messages than slots the producer must have seen the
	// queue full; Stalls is the observability counter for exactly that.
	if q.Stalls() == 0 {
		t.Error("Stalls() = 0; expected backpressure on a 4-slot queue")
	}
}
