package desmodels

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// The Pure model: thread-based ranks with lock-free channel costs, SPTD /
// Partitioned-Reducer collectives bridged by leader trees, and — the heart
// of the paper — the SSW-Loop: every blocking wait tries to steal chunks of
// co-resident active tasks, in virtual time.

// vexec is one task execution open for stealing.
type vexec struct {
	owner  int
	chunks []int64
	next   int
	done   int
}

// pureNode is the shared per-node state (the active_tasks array plus
// collective round counters).
type pureNode struct {
	ranks []int // global rank ids, ascending (ranks[0] is the leader)
	execs []*vexec
	// Small-collective (SPTD) state.
	arrived int
	doneSeq int
	// Partitioned-Reducer phase state.
	prArr     int
	prArrSeq  int
	prDone    int
	prDoneSeq int
	// Broadcast publication counter.
	bcastSeq int
	// helperSigs are the node's helper-thread parking signals.
	helperSigs []*cluster.Signal
}

type pureMachine struct {
	*machine
	trace    *Trace
	sigs     []*cluster.Signal
	nodes    []*pureNode // dense by node-index (only nodes with ranks)
	nodeIdx  map[int]int // node id -> index in nodes
	finished int
	nApp     int
}

func (m *pureMachine) pulse(rank int) { m.sigs[rank].Pulse() }

func (m *pureMachine) pulseNode(nd *pureNode) {
	for _, r := range nd.ranks {
		m.sigs[r].Pulse()
	}
	for _, s := range nd.helperSigs {
		s.Pulse()
	}
}

func (m *pureMachine) pulseAllNodes() {
	for _, nd := range m.nodes {
		m.pulseNode(nd)
	}
}

// PureOpts tunes the Pure model.
type PureOpts struct {
	// HelpersPerNode adds helper threads that only steal (Fig. 4 class A).
	HelpersPerNode int
	// Trace, when non-nil, records per-rank activity spans in virtual time
	// (the paper's Figure 1 timeline).
	Trace *Trace
}

// pureRank is one simulated Pure rank.
type pureRank struct {
	m     *pureMachine
	p     *cluster.Proc
	r, n  int
	node  *pureNode
	local int
	// Per-collective-kind round counters (lockstep across ranks because
	// collectives must be invoked in the same order by every rank).
	sptdRound, prRound, bcastRound int
}

// RunPure simulates prog over n Pure ranks and returns the end-to-end
// virtual nanoseconds.
func RunPure(n, ranksPerNode int, costs CostModel, opts PureOpts, prog func(VCtx)) (int64, error) {
	place, err := defaultPlacement(n, ranksPerNode)
	if err != nil {
		return 0, err
	}
	return RunPurePlaced(place, costs, opts, prog)
}

// RunPurePlaced is RunPure with an explicit placement.
func RunPurePlaced(place *topology.Placement, costs CostModel, opts PureOpts, prog func(VCtx)) (int64, error) {
	n := place.NRank
	m := &pureMachine{
		machine: newMachine(place, costs),
		trace:   opts.Trace,
		sigs:    make([]*cluster.Signal, n),
		nodeIdx: make(map[int]int),
		nApp:    n,
	}
	for r := 0; r < n; r++ {
		m.sigs[r] = &cluster.Signal{}
	}
	var nodeIDs []int
	for nid := 0; nid < place.Spec.Nodes; nid++ {
		if len(place.RanksOnNode(nid)) > 0 {
			nodeIDs = append(nodeIDs, nid)
		}
	}
	sort.Ints(nodeIDs)
	for i, nid := range nodeIDs {
		m.nodeIdx[nid] = i
		m.nodes = append(m.nodes, &pureNode{ranks: place.RanksOnNode(nid)})
	}

	for r := 0; r < n; r++ {
		rr := r
		nd := m.nodes[m.nodeIdx[place.NodeOf(rr)]]
		local := place.LocalIndex(rr)
		m.eng.Spawn(fmt.Sprintf("pure%d", rr), func(p *cluster.Proc) {
			v := &pureRank{m: m, p: p, r: rr, n: n, node: nd, local: local}
			prog(v)
			m.finished++
			if m.finished == m.nApp {
				m.pulseAllNodes() // release helper threads
			}
		})
	}
	// Helper threads: pure thieves on otherwise idle hardware threads.
	for i := range m.nodes {
		nd := m.nodes[i]
		for h := 0; h < opts.HelpersPerNode; h++ {
			sig := &cluster.Signal{}
			nd.helperSigs = append(nd.helperSigs, sig)
			m.eng.Spawn(fmt.Sprintf("helper-n%d-%d", i, h), func(p *cluster.Proc) {
				for m.finished < m.nApp {
					if m.stealOne(p, nd, -1) {
						continue
					}
					if m.finished == m.nApp {
						return
					}
					sig.Wait(p, "helper-idle")
				}
			})
		}
	}
	return m.eng.Run()
}

// stealOne attempts one SSW steal from the node's active tasks on behalf of
// rank self (-1 for a helper thread).  It executes at most one chunk.
func (m *pureMachine) stealOne(p *cluster.Proc, nd *pureNode, self int) bool {
	for _, ex := range nd.execs {
		if ex.owner == self || ex.next >= len(ex.chunks) {
			continue
		}
		idx := ex.next
		c := ex.chunks[idx]
		ex.next++
		t0 := m.eng.Now()
		p.Delay(m.costs.StealProbe + m.costs.ChunkOverhead + c)
		if self >= 0 { // helper threads have no timeline row
			m.trace.add(Span{Rank: self, Kind: SpanStolenChunk, Start: t0, End: m.eng.Now(), Owner: ex.owner, ChunkIdx: idx})
		}
		ex.done++
		m.pulse(ex.owner)
		return true
	}
	return false
}

// waitSSW is the Spin-Steal-Wait loop in virtual time: re-check the
// blocking condition, steal one chunk if any co-resident task is open, park
// on the rank's signal otherwise.
func (v *pureRank) waitSSW(cond func() bool) {
	for !cond() {
		if v.m.stealOne(v.p, v.node, v.r) {
			continue
		}
		v.m.sigs[v.r].Wait(v.p, "ssw")
	}
}

func (v *pureRank) Rank() int { return v.r }
func (v *pureRank) Size() int { return v.n }
func (v *pureRank) Compute(ns int64) {
	t0 := v.m.eng.Now()
	v.p.Delay(ns)
	v.m.trace.add(Span{Rank: v.r, Kind: SpanCompute, Start: t0, End: v.m.eng.Now(), Owner: v.r, ChunkIdx: -1})
}
func (v *pureRank) StepEnd() {}

// Task publishes the chunks for stealing and executes work-first; the owner
// waits (without stealing, per the paper) for thieves to finish stragglers.
func (v *pureRank) Task(chunks []int64) {
	ex := &vexec{owner: v.r, chunks: chunks}
	v.node.execs = append(v.node.execs, ex)
	v.m.pulseNode(v.node) // task is open for stealing: wake blocked ranks
	for ex.next < len(ex.chunks) {
		idx := ex.next
		c := ex.chunks[idx]
		ex.next++
		t0 := v.m.eng.Now()
		v.p.Delay(c + v.m.costs.ChunkOverhead)
		v.m.trace.add(Span{Rank: v.r, Kind: SpanOwnChunk, Start: t0, End: v.m.eng.Now(), Owner: v.r, ChunkIdx: idx})
		ex.done++
	}
	for ex.done < len(ex.chunks) {
		v.m.sigs[v.r].Wait(v.p, "task-stragglers")
	}
	// Close the task.
	for i, e := range v.node.execs {
		if e == ex {
			v.node.execs = append(v.node.execs[:i], v.node.execs[i+1:]...)
			break
		}
	}
}

func (v *pureRank) Send(dst, bytes, tag int) {
	c := v.m.costs
	key := msgKey{src: v.r, dst: dst, tag: tag}
	m := v.m
	if m.interNode(v.r, dst) {
		// Inter-node: the MPI_THREAD_MULTIPLE leg.
		if bytes < c.MPIEagerMax {
			v.p.Delay(c.PureSendOverhead + c.PureThreadMultiplePenalty)
			m.eng.At(m.netDelay(bytes), func() { m.deliverMsg(key, pmsg{bytes: bytes}) })
			return
		}
		v.p.Delay(c.PureSendOverhead + c.PureThreadMultiplePenalty)
		done := false
		transfer := c.MPIRvzHandshake + m.netDelay(bytes)
		self := v.r
		m.eng.At(m.netDelay(0), func() {
			m.deliverMsg(key, pmsg{bytes: bytes, rvz: true, transferNs: transfer, ack: func() {
				done = true
				m.pulse(self)
			}})
		})
		v.waitSSW(func() bool { return done }) // steal while blocked
		return
	}
	lat := c.p2pIntraPureLatency(m.distClass(v.r, dst))
	if bytes < c.PureEagerMax {
		// PBQ eager: copy into the slot, publish the sequence number.
		v.p.Delay(c.PureSendOverhead + int64(float64(bytes)*c.PureEagerPerByte))
		m.eng.At(lat, func() { m.deliverMsg(key, pmsg{bytes: bytes}) })
		return
	}
	// Rendezvous: the sender waits (stealing) until the receiver's posted
	// envelope matches, then performs the single copy and signals.
	v.p.Delay(c.PureSendOverhead)
	done := false
	self := v.r
	transfer := lat + int64(float64(bytes)*c.PureRvzPerByte)
	m.deliverMsg(key, pmsg{bytes: bytes, rvz: true, transferNs: transfer, ack: func() {
		done = true
		m.pulse(self)
	}})
	v.waitSSW(func() bool { return done })
}

// Irecv posts a receive; completion pulses this rank's SSW signal.
func (v *pureRank) Irecv(src, bytes, tag int) Pending {
	key := msgKey{src: src, dst: v.r, tag: tag}
	self := v.r
	pr := &precv{bytes: bytes, intra: !v.m.interNode(v.r, src), onDone: func() { v.m.pulse(self) }}
	v.m.postRecv(key, pr)
	return pr
}

// Wait is the SSW-Loop: steal chunks until the receive completes, then pay
// the receiver-side cost (eager: copy out of the PBQ slot).
func (v *pureRank) Wait(pr Pending) {
	v.waitSSW(func() bool { return pr.done })
	c := v.m.costs
	cost := c.PureRecvOverhead
	if pr.intra {
		if !pr.gotRvz {
			cost += int64(float64(pr.bytes) * c.PureEagerPerByte)
		}
	} else {
		cost += c.PureThreadMultiplePenalty
	}
	v.p.Delay(cost)
}

func (v *pureRank) Recv(src, bytes, tag int) {
	v.Wait(v.Irecv(src, bytes, tag))
}

// ---- Collectives ----

// leaders returns the node-leader global ranks, by node index.
func (m *pureMachine) leaders() []int {
	ls := make([]int, len(m.nodes))
	for i, nd := range m.nodes {
		ls[i] = nd.ranks[0]
	}
	return ls
}

// myNodeIndex returns the rank's node index among participating nodes.
func (v *pureRank) myNodeIndex() int { return v.m.nodeIdx[v.m.place.NodeOf(v.r)] }

// Allreduce: SPTD flat-combining for small payloads, Partitioned Reducer
// for large, leaders bridging across nodes with binomial trees.
func (v *pureRank) Allreduce(bytes int) {
	if bytes > v.m.costs.PRThreshold {
		v.prAllreduce(bytes)
		return
	}
	v.sptdAllreduce(bytes, true)
}

// Barrier is the SPTD synchronization without payload; across nodes the
// leaders run a dissemination exchange (what MPI_Barrier does among the
// node leaders in the paper's runtime), which halves the critical path
// versus a reduce+broadcast tree.
func (v *pureRank) Barrier() { v.sptdAllreduce(0, false) }

// leaderBarrier is the cross-node dissemination among node leaders.
func (v *pureRank) leaderBarrier() {
	ls := v.m.leaders()
	m := len(ls)
	li := v.myNodeIndex()
	for round, dist := 0, 1; dist < m; round, dist = round+1, dist*2 {
		to := ls[(li+dist)%m]
		from := ls[((li-dist)%m+m)%m]
		v.Send(to, 1, internalTag+44+round)
		v.Recv(from, 1, internalTag+44+round)
	}
}

func (v *pureRank) sptdAllreduce(bytes int, fold bool) {
	c := v.m.costs
	v.sptdRound++
	nd := v.node
	nLocal := len(nd.ranks)
	if v.local == 0 {
		// Leader: gather all dropboxes (stealing while waiting), fold,
		// bridge, publish.
		v.waitSSW(func() bool { return nd.arrived == nLocal-1 })
		nd.arrived = 0
		cost := int64(nLocal) * c.SPTDCheck
		if fold {
			cost += int64(float64(nLocal*bytes) * c.SPTDLeaderFoldPerByte)
		}
		v.p.Delay(cost)
		if len(v.m.nodes) > 1 {
			if fold {
				v.leaderAllreduce(bytes)
			} else {
				v.leaderBarrier()
			}
		}
		nd.doneSeq++
		v.m.pulseNode(nd)
		return
	}
	// Non-leader: deposit, signal, wait (stealing), copy out.
	v.p.Delay(c.SPTDSignal + int64(float64(bytes)*c.PureEagerPerByte))
	nd.arrived++
	v.m.pulse(nd.ranks[0])
	round := v.sptdRound
	v.waitSSW(func() bool { return nd.doneSeq >= round })
	if fold {
		v.p.Delay(c.SPTDCopyOut + int64(float64(bytes)*c.PureEagerPerByte))
	} else {
		v.p.Delay(c.SPTDCopyOut)
	}
}

// prAllreduce models the Partitioned Reducer: all threads arrive, fold
// concurrently, leader bridges, all copy out.
func (v *pureRank) prAllreduce(bytes int) {
	c := v.m.costs
	v.prRound++
	round := v.prRound
	nd := v.node
	nLocal := len(nd.ranks)
	leader := nd.ranks[0]

	// Arrival phase: publish input pointer.
	v.p.Delay(c.SPTDSignal)
	nd.prArr++
	v.m.pulse(leader)
	if v.local == 0 {
		v.waitSSW(func() bool { return nd.prArr == nLocal })
		nd.prArr = 0
		nd.prArrSeq++
		v.m.pulseNode(nd)
	} else {
		v.waitSSW(func() bool { return nd.prArrSeq >= round })
	}
	// Concurrent fold over disjoint cacheline chunks: wall-clock is the
	// whole payload's per-byte cost (each thread reads all inputs over its
	// chunk), plus dispatch.
	v.p.Delay(int64(float64(bytes)*c.PRPerByte) + c.ChunkOverhead)
	nd.prDone++
	v.m.pulse(leader)
	if v.local == 0 {
		v.waitSSW(func() bool { return nd.prDone == nLocal })
		nd.prDone = 0
		if len(v.m.nodes) > 1 {
			v.leaderAllreduce(bytes)
		}
		nd.prDoneSeq++
		v.m.pulseNode(nd)
	} else {
		v.waitSSW(func() bool { return nd.prDoneSeq >= round })
	}
	v.p.Delay(int64(float64(bytes) * c.PureEagerPerByte)) // copy out
}

// leaderAllreduce bridges across nodes: binomial reduce to node 0's leader
// plus binomial broadcast, over the inter-node p2p path.
func (v *pureRank) leaderAllreduce(bytes int) {
	ls := v.m.leaders()
	m := len(ls)
	li := v.myNodeIndex()
	for mask := 1; mask < m; mask <<= 1 {
		if li&mask != 0 {
			v.Send(ls[li-mask], bytes, internalTag+40)
			break
		}
		if li+mask < m {
			v.Recv(ls[li+mask], bytes, internalTag+40)
			v.p.Delay(int64(float64(bytes) * v.m.costs.SPTDFoldPerByte))
		}
	}
	// Broadcast back down.
	mask := 1
	for mask < m {
		if li&mask != 0 {
			v.Recv(ls[li-mask], bytes, internalTag+41)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if li+mask < m {
			v.Send(ls[li+mask], bytes, internalTag+41)
		}
		mask >>= 1
	}
}

// Bcast: root publishes on its node, leaders tree across nodes, every node
// publishes locally.
func (v *pureRank) Bcast(bytes, root int) {
	c := v.m.costs
	v.bcastRound++
	round := v.bcastRound
	nd := v.node
	rootNode := v.m.nodeIdx[v.m.place.NodeOf(root)]
	myNode := v.myNodeIndex()

	isPublisher := (myNode == rootNode && v.r == root) || (myNode != rootNode && v.local == 0)
	if isPublisher {
		if len(v.m.nodes) > 1 {
			v.leaderBcastTree(bytes, root, rootNode)
		}
		v.p.Delay(int64(float64(bytes) * c.PureEagerPerByte)) // write shared buffer
		nd.bcastSeq++
		v.m.pulseNode(nd)
		return
	}
	v.waitSSW(func() bool { return nd.bcastSeq >= round })
	v.p.Delay(c.SPTDCopyOut + int64(float64(bytes)*c.PureEagerPerByte))
}

// leaderBcastTree distributes from the root node's publisher to all node
// leaders.  On the root's node the publisher is the root rank itself; on
// other nodes it is the node leader.
func (v *pureRank) leaderBcastTree(bytes, root, rootNode int) {
	m := len(v.m.nodes)
	li := (v.myNodeIndex() - rootNode + m) % m
	agent := func(u int) int {
		ni := (u + rootNode) % m
		if ni == rootNode {
			// On the root's node the publisher is the root rank itself.
			return root
		}
		return v.m.nodes[ni].ranks[0]
	}
	mask := 1
	for mask < m {
		if li&mask != 0 {
			v.Recv(agent(li-mask), bytes, internalTag+42)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if li+mask < m {
			v.Send(agent(li+mask), bytes, internalTag+42)
		}
		mask >>= 1
	}
}
