package desmodels

import (
	"strings"
	"testing"
)

// pingPong exchanges msgs messages of size bytes between ranks 0 and 1.
func pingPong(bytes, iters int) func(VCtx) {
	return func(v VCtx) {
		for i := 0; i < iters; i++ {
			if v.Rank() == 0 {
				v.Send(1, bytes, 0)
				v.Recv(1, bytes, 1)
			} else if v.Rank() == 1 {
				v.Recv(0, bytes, 0)
				v.Send(0, bytes, 1)
			}
		}
	}
}

func TestPureBeatsMPIOnIntraNodeSmallMessages(t *testing.T) {
	costs := Paper()
	mpiT, err := RunMPI(2, 0, costs, pingPong(64, 100))
	if err != nil {
		t.Fatal(err)
	}
	pureT, err := RunPure(2, 0, costs, PureOpts{}, pingPong(64, 100))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mpiT) / float64(pureT)
	t.Logf("64B intra-node ping-pong: mpi=%dns pure=%dns ratio=%.1fx", mpiT, pureT, ratio)
	if ratio < 3 {
		t.Errorf("expected Pure >> MPI for small intra-node messages, ratio %.2f", ratio)
	}
}

func TestPlacementAffectsPureLatency(t *testing.T) {
	costs := Paper()
	// Ranks 0,1 are hyperthread siblings under SMP placement (64/node);
	// compare with a 2-per-node placement where they share L3.
	same, err := RunPure(2, 0, costs, PureOpts{}, pingPong(64, 100))
	if err != nil {
		t.Fatal(err)
	}
	// Spread placement: rank 1 on a different node.
	spread, err := RunPure(2, 1, costs, PureOpts{}, pingPong(64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if same >= spread {
		t.Errorf("same-core %d should beat cross-node %d", same, spread)
	}
}

func TestLargeMessageRatioShrinks(t *testing.T) {
	costs := Paper()
	small := func() float64 {
		m, _ := RunMPI(2, 0, costs, pingPong(64, 50))
		p, _ := RunPure(2, 0, costs, PureOpts{}, pingPong(64, 50))
		return float64(m) / float64(p)
	}()
	large := func() float64 {
		m, _ := RunMPI(2, 0, costs, pingPong(1<<20, 10))
		p, _ := RunPure(2, 0, costs, PureOpts{}, pingPong(1<<20, 10))
		return float64(m) / float64(p)
	}()
	t.Logf("ratio small=%.1fx large=%.1fx", small, large)
	if large >= small {
		t.Errorf("large-message ratio %.2f should be below small-message ratio %.2f", large, small)
	}
	if large < 1.0 || large > 3.0 {
		t.Errorf("large-message ratio %.2f outside the paper's ~1-2x regime", large)
	}
}

// imbalancedTaskProg: rank 0 runs a big chunked task while others block on a
// message from rank 0 — the canonical stealing scenario.
func imbalancedTaskProg(chunks int, chunkNs int64) func(VCtx) {
	return func(v VCtx) {
		if v.Rank() == 0 {
			cs := make([]int64, chunks)
			for i := range cs {
				cs[i] = chunkNs
			}
			v.Task(cs)
			for dst := 1; dst < v.Size(); dst++ {
				v.Send(dst, 8, 0)
			}
		} else {
			v.Recv(0, 8, 0)
		}
	}
}

func TestSSWStealingShrinksMakespan(t *testing.T) {
	costs := Paper()
	prog := imbalancedTaskProg(64, 20000) // 1.28ms of work on rank 0
	mpiT, err := RunMPI(4, 0, costs, prog)
	if err != nil {
		t.Fatal(err)
	}
	pureT, err := RunPure(4, 0, costs, PureOpts{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(mpiT) / float64(pureT)
	t.Logf("task imbalance: mpi=%dns pure=%dns speedup=%.2fx", mpiT, pureT, speedup)
	// Three thieves + owner should approach 4x on the task portion.
	if speedup < 2.5 {
		t.Errorf("stealing speedup %.2f too small", speedup)
	}
}

func TestHelpersSteal(t *testing.T) {
	costs := Paper()
	prog := func(v VCtx) {
		cs := make([]int64, 64)
		for i := range cs {
			cs[i] = 20000
		}
		v.Task(cs)
	}
	solo, err := RunPure(1, 0, costs, PureOpts{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	helped, err := RunPure(1, 0, costs, PureOpts{HelpersPerNode: 3}, prog)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(solo) / float64(helped)
	t.Logf("helpers: solo=%dns helped=%dns speedup=%.2fx", solo, helped, speedup)
	if speedup < 2.5 {
		t.Errorf("helper speedup %.2f too small", speedup)
	}
}

func barrierProg(iters int) func(VCtx) {
	return func(v VCtx) {
		for i := 0; i < iters; i++ {
			v.Barrier()
		}
	}
}

func TestPureBarrierBeatsMPIAndOMP(t *testing.T) {
	costs := Paper()
	const n = 64
	mpiT, err := RunMPI(n, 0, costs, barrierProg(10))
	if err != nil {
		t.Fatal(err)
	}
	pureT, err := RunPure(n, 0, costs, PureOpts{}, barrierProg(10))
	if err != nil {
		t.Fatal(err)
	}
	ompT, err := RunOMP(n, costs, barrierProg(10))
	if err != nil {
		t.Fatal(err)
	}
	rMPI := float64(mpiT) / float64(pureT)
	rOMP := float64(ompT) / float64(pureT)
	t.Logf("64-rank barrier: mpi=%d pure=%d omp=%d (pure is %.1fx vs mpi, %.1fx vs omp)",
		mpiT, pureT, ompT, rMPI, rOMP)
	if rMPI < 2 || rMPI > 12 {
		t.Errorf("barrier speedup over MPI %.2f outside the paper's 2.4-5x regime (x2 slack)", rMPI)
	}
	if rOMP < 2 {
		t.Errorf("barrier speedup over OMP %.2f too small", rOMP)
	}
}

func allreduceProg(bytes, iters int) func(VCtx) {
	return func(v VCtx) {
		for i := 0; i < iters; i++ {
			v.Allreduce(bytes)
		}
	}
}

func TestAllreduce8BAcrossScales(t *testing.T) {
	costs := Paper()
	prev := map[string]float64{}
	for _, n := range []int{64, 256, 1024} {
		mpiT, err := RunMPI(n, 64, costs, allreduceProg(8, 5))
		if err != nil {
			t.Fatal(err)
		}
		pureT, err := RunPure(n, 64, costs, PureOpts{}, allreduceProg(8, 5))
		if err != nil {
			t.Fatal(err)
		}
		dmappT, err := RunMPIDMAPP(n, 64, costs, allreduceProg(8, 5))
		if err != nil {
			t.Fatal(err)
		}
		rp := float64(mpiT) / float64(pureT)
		rd := float64(mpiT) / float64(dmappT)
		t.Logf("n=%d: mpi=%d dmapp=%d pure=%d (pure %.2fx, dmapp %.2fx)", n, mpiT, dmappT, pureT, rp, rd)
		if rp < 1.05 {
			t.Errorf("n=%d: Pure allreduce not faster than MPI (%.2fx)", n, rp)
		}
		if n > 64 && rd < 1.0 {
			t.Errorf("n=%d: DMAPP slower than plain MPI (%.2fx)", n, rd)
		}
		prev["pure"] = rp
	}
}

func TestLargeAllreduceUsesPartitionedReducer(t *testing.T) {
	costs := Paper()
	const n = 64
	mpiT, err := RunMPI(n, 0, costs, allreduceProg(64<<10, 3))
	if err != nil {
		t.Fatal(err)
	}
	pureT, err := RunPure(n, 0, costs, PureOpts{}, allreduceProg(64<<10, 3))
	if err != nil {
		t.Fatal(err)
	}
	r := float64(mpiT) / float64(pureT)
	t.Logf("64KiB allreduce: mpi=%d pure=%d ratio=%.2f", mpiT, pureT, r)
	if r < 1.2 {
		t.Errorf("partitioned reducer should beat the MPI tree, got %.2fx", r)
	}
}

func TestBcastModels(t *testing.T) {
	costs := Paper()
	prog := func(v VCtx) {
		v.Bcast(1024, 0)
		v.Bcast(1024, v.Size()-1)
		v.Barrier()
	}
	for name, run := range map[string]func() (int64, error){
		"mpi":  func() (int64, error) { return RunMPI(16, 4, costs, prog) },
		"pure": func() (int64, error) { return RunPure(16, 4, costs, PureOpts{}, prog) },
	} {
		if _, err := run(); err != nil {
			t.Errorf("%s bcast: %v", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	costs := Paper()
	prog := imbalancedTaskProg(32, 5000)
	a, err := RunPure(8, 4, costs, PureOpts{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPure(8, 4, costs, PureOpts{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic simulation: %d vs %d", a, b)
	}
}

func TestHybridTaskForkJoin(t *testing.T) {
	costs := Paper()
	prog := func(v VCtx) {
		cs := make([]int64, 16)
		for i := range cs {
			cs[i] = 10000
		}
		v.Task(cs)
	}
	serial, err := RunMPI(1, 0, costs, prog)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := RunHybrid(1, 4, 0, costs, prog)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(serial) / float64(hyb)
	t.Logf("hybrid 4-thread task: serial=%d hybrid=%d speedup=%.2f", serial, hyb, speedup)
	if speedup < 3 || speedup > 4 {
		t.Errorf("hybrid fork-join speedup %.2f, want ~4x minus fork-join", speedup)
	}
	if _, err := RunHybrid(1, 0, 0, costs, prog); err == nil {
		t.Error("zero thread count accepted")
	}
}

func TestAMPIOverdecompositionHidesImbalance(t *testing.T) {
	costs := Paper()
	// Alternating heavy/light ranks with a collective per step: classic
	// static imbalance that overdecomposition + LB can fix.
	prog := func(v VCtx) {
		for step := 0; step < 24; step++ {
			work := int64(20000)
			if v.Rank()%2 == 0 {
				work = 100000
			}
			v.Compute(work)
			v.Allreduce(8)
			v.StepEnd()
		}
	}
	t1, mig1, err := RunAMPI(8, costs, AMPIOpts{VP: 1, CoresPerNode: 8}, prog)
	if err != nil {
		t.Fatal(err)
	}
	t4, mig4, err := RunAMPI(8, costs, AMPIOpts{VP: 4, CoresPerNode: 2}, prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("AMPI vp=1: %dns (%d migrations); vp=4 on 1/4 cores: %dns (%d migrations)", t1, mig1, t4, mig4)
	if mig4 == 0 {
		t.Error("expected migrations under imbalance with vp=4")
	}
	// vp=4 runs on a quarter of the cores; it should cost less than 4x the
	// vp=1 time because overdecomposition + LB packs the imbalanced work.
	if float64(t4) > 3.5*float64(t1) {
		t.Errorf("overdecomposition shows no benefit: vp4=%d vs vp1=%d", t4, t1)
	}
}

func TestAMPIValidation(t *testing.T) {
	if _, _, err := RunAMPI(5, Paper(), AMPIOpts{VP: 2}, func(VCtx) {}); err == nil {
		t.Error("indivisible vrank count accepted")
	}
}

func TestAMPISMPFasterIntraNode(t *testing.T) {
	costs := Paper()
	prog := pingPong(64, 50)
	nonsmp, _, err := RunAMPI(2, costs, AMPIOpts{VP: 1, CoresPerNode: 2}, prog)
	if err != nil {
		t.Fatal(err)
	}
	smp, _, err := RunAMPI(2, costs, AMPIOpts{VP: 1, SMP: true, CoresPerNode: 2}, prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("AMPI ping-pong: non-SMP=%d SMP=%d", nonsmp, smp)
	if smp >= nonsmp {
		t.Errorf("SMP mode should be faster intra-node: %d vs %d", smp, nonsmp)
	}
}

func TestMultiNodeAppPattern(t *testing.T) {
	// A small halo+allreduce pattern across 4 nodes must complete without
	// deadlock on both models and MPI must cost more.
	costs := Paper()
	prog := func(v VCtx) {
		n := v.Size()
		for step := 0; step < 5; step++ {
			right := (v.Rank() + 1) % n
			left := (v.Rank() - 1 + n) % n
			v.Send(right, 4096, 1)
			v.Recv(left, 4096, 1)
			v.Compute(50000)
			v.Allreduce(16)
		}
	}
	mpiT, err := RunMPI(16, 4, costs, prog)
	if err != nil {
		t.Fatal(err)
	}
	pureT, err := RunPure(16, 4, costs, PureOpts{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("halo pattern 4 nodes: mpi=%d pure=%d", mpiT, pureT)
	if pureT >= mpiT {
		t.Errorf("pure %d should beat mpi %d", pureT, mpiT)
	}
}

func TestOMPTaskAndAMPITaskAndIrecv(t *testing.T) {
	costs := Paper()
	// OMP-only model: Task runs serially on the calling thread; Bcast works.
	ompT, err := RunOMP(4, costs, func(v VCtx) {
		if v.Rank() == 0 && v.Size() != 4 {
			t.Error("size wrong")
		}
		v.Compute(100)
		v.Task([]int64{1000, 2000})
		v.Bcast(64, 0)
		v.StepEnd()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ompT <= 0 {
		t.Errorf("omp time = %d", ompT)
	}
	// OMP messaging panics.
	_, err = RunOMP(2, costs, func(v VCtx) {
		if v.Rank() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("omp Send did not panic")
				}
			}()
			v.Send(1, 8, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// AMPI: Task + Irecv/Wait paths.
	_, _, err = RunAMPI(4, costs, AMPIOpts{VP: 2, CoresPerNode: 2}, func(v VCtx) {
		if v.Rank() == 0 {
			v.Task([]int64{500, 500})
			v.Send(1, 64, 0)
		} else if v.Rank() == 1 {
			pr := v.Irecv(0, 64, 0)
			v.Compute(100)
			v.Wait(pr)
		}
		v.StepEnd()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridMessagingAndCollectives(t *testing.T) {
	costs := Paper()
	hyb, err := RunHybrid(4, 2, 2, costs, func(v VCtx) {
		if v.Rank() == 0 {
			v.Send(1, 256, 0)
		} else if v.Rank() == 1 {
			v.Recv(0, 256, 0)
		}
		v.Compute(1000)
		v.Allreduce(8)
		v.Bcast(128, 2)
		v.Barrier()
		v.StepEnd()
	})
	if err != nil {
		t.Fatal(err)
	}
	if hyb <= 0 {
		t.Errorf("hybrid time = %d", hyb)
	}
}

func TestTraceRenderAndKinds(t *testing.T) {
	costs := Paper()
	trace := &Trace{}
	_, err := RunPure(3, 0, costs, PureOpts{Trace: trace}, func(v VCtx) {
		if v.Rank() == 0 {
			v.Compute(5000)
			v.Task([]int64{10000, 10000, 10000, 10000})
			v.Send(1, 8, 0)
			v.Send(2, 8, 0)
		} else {
			v.Recv(0, 8, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	if trace.StolenChunks() == 0 {
		t.Error("no stolen chunks in trace (blocked ranks should have stolen)")
	}
	var sb strings.Builder
	trace.Render(&sb, 60)
	out := sb.String()
	for _, want := range []string{"rank  0", "rank  2", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Kind strings.
	if SpanCompute.String() != "compute" || SpanOwnChunk.String() != "own-chunk" ||
		SpanStolenChunk.String() != "stolen-chunk" {
		t.Error("SpanKind strings wrong")
	}
	// Empty trace renders gracefully.
	sb.Reset()
	(&Trace{}).Render(&sb, 10)
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty render: %q", sb.String())
	}
}
