package desmodels

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Trace records per-rank activity intervals in virtual time, reproducing the
// paper's Figure 1 timeline: which rank executed which task chunk (own or
// stolen) and when ranks were blocked.  Attach one to PureOpts.Trace.
type Trace struct {
	Spans []Span
}

// SpanKind classifies an activity interval.
type SpanKind int

const (
	// SpanCompute is plain rank computation.
	SpanCompute SpanKind = iota
	// SpanOwnChunk is a task chunk executed by its owning rank.
	SpanOwnChunk
	// SpanStolenChunk is a task chunk executed by a thief.
	SpanStolenChunk
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanCompute:
		return "compute"
	case SpanOwnChunk:
		return "own-chunk"
	case SpanStolenChunk:
		return "stolen-chunk"
	default:
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
}

// Span is one activity interval of one rank.
type Span struct {
	Rank     int
	Kind     SpanKind
	Start    int64 // virtual ns
	End      int64
	Owner    int // task owner for chunk spans (== Rank for own chunks)
	ChunkIdx int // chunk index for chunk spans, -1 otherwise
}

func (t *Trace) add(s Span) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, s)
}

// StolenChunks counts the chunks executed by ranks other than their owner.
func (t *Trace) StolenChunks() int {
	n := 0
	for _, s := range t.Spans {
		if s.Kind == SpanStolenChunk {
			n++
		}
	}
	return n
}

// Render draws an ASCII timeline like the paper's Figure 1: one row per
// rank, time flowing right, with '#' for own chunks, digits for stolen
// chunks (the digit is the owner rank mod 10), '=' for plain compute and
// '.' for blocked time.  width is the number of character columns.
func (t *Trace) Render(w io.Writer, width int) {
	if len(t.Spans) == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	if width <= 0 {
		width = 100
	}
	var tEnd int64
	maxRank := 0
	for _, s := range t.Spans {
		if s.End > tEnd {
			tEnd = s.End
		}
		if s.Rank > maxRank {
			maxRank = s.Rank
		}
	}
	if tEnd == 0 {
		tEnd = 1
	}
	rows := make([][]byte, maxRank+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	// Paint later spans over earlier ones deterministically.
	spans := make([]Span, len(t.Spans))
	copy(spans, t.Spans)
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
	for _, s := range spans {
		c0 := int(s.Start * int64(width) / tEnd)
		c1 := int(s.End * int64(width) / tEnd)
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > width {
			c1 = width
		}
		var ch byte
		switch s.Kind {
		case SpanOwnChunk:
			ch = '#'
		case SpanStolenChunk:
			ch = byte('0' + s.Owner%10)
		default:
			ch = '='
		}
		for c := c0; c < c1; c++ {
			rows[s.Rank][c] = ch
		}
	}
	fmt.Fprintf(w, "timeline (0 .. %s): '#'=own chunk, digit=stolen chunk (owner), '='=compute, '.'=blocked\n", nsString(tEnd))
	for r, row := range rows {
		fmt.Fprintf(w, "rank %2d |%s|\n", r, row)
	}
}

func nsString(v int64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fus", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}
