package desmodels

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// The AMPI model (the paper's §5.2.2 comparison): virtualized MPI ranks
// ("vranks") over-decomposed vp-to-one onto processing elements (PEs, one
// per core), with a periodic measurement-based greedy load balancer that
// migrates vranks between PEs.  Contrast with Pure, which shares *chunks*
// at communication-latency granularity; AMPI shares whole ranks at
// load-balancer granularity — the coarseness that Fig. 5c exposes.
//
// Modes:
//   - non-SMP: each PE is an OS process; vrank messages between PEs pay
//     full MPI process costs (within or across nodes).
//   - SMP: one process per node with a communication thread; intra-node
//     messages between vranks take the faster threaded path, and the SMP
//     configuration gets the extra comm-thread hardware the paper grants it.

// AMPIOpts configures the model.
type AMPIOpts struct {
	// VP is the virtualization ratio (vranks per PE): 1, 2, 4 in the paper.
	VP int
	// SMP selects the threaded node-process mode.
	SMP bool
	// CoresPerNode is the PE count per node (default 64).
	CoresPerNode int
	// StateBytes is the migration payload per vrank (default 64 KiB).
	StateBytes int
}

type ampiMachine struct {
	*machine
	opts        AMPIOpts
	peOf        []int // vrank -> PE
	peNode      []int // PE -> node
	peTok       []*cluster.Chan[int]
	loads       []int64 // per-vrank compute since last LB
	pendingMove []bool  // vranks that must pay a migration after the next barrier
	nv          int
	moved       int64 // total migrations (stats)
}

type ampiRank struct {
	m    *ampiMachine
	p    *cluster.Proc
	r, n int
	step int
}

// RunAMPI simulates prog over nv virtual ranks with the given options and
// returns (virtual ns, migrations performed).
func RunAMPI(nv int, costs CostModel, opts AMPIOpts, prog func(VCtx)) (int64, int64, error) {
	if opts.VP <= 0 {
		opts.VP = 1
	}
	if opts.CoresPerNode <= 0 {
		opts.CoresPerNode = 64
	}
	if opts.StateBytes <= 0 {
		opts.StateBytes = 64 << 10
	}
	if nv%opts.VP != 0 {
		return 0, 0, fmt.Errorf("desmodels: %d vranks not divisible by vp=%d", nv, opts.VP)
	}
	npe := nv / opts.VP
	nodes := (npe + opts.CoresPerNode - 1) / opts.CoresPerNode
	place, err := defaultPlacement(max(nodes, 1), 1) // placement only anchors the engine; PE->node is explicit
	if err != nil {
		return 0, 0, err
	}
	m := &ampiMachine{
		machine:     newMachine(place, costs),
		opts:        opts,
		peOf:        make([]int, nv),
		peNode:      make([]int, npe),
		peTok:       make([]*cluster.Chan[int], npe),
		loads:       make([]int64, nv),
		pendingMove: make([]bool, nv),
		nv:          nv,
	}
	for pe := 0; pe < npe; pe++ {
		m.peNode[pe] = pe / opts.CoresPerNode
		m.peTok[pe] = cluster.NewChan[int](m.eng, fmt.Sprintf("pe%d", pe))
		m.peTok[pe].Send(1) // the PE's execution token
	}
	for v := 0; v < nv; v++ {
		m.peOf[v] = v / opts.VP // block assignment, like AMPI's default map
	}
	for r := 0; r < nv; r++ {
		rr := r
		m.eng.Spawn(fmt.Sprintf("ampi%d", rr), func(p *cluster.Proc) {
			prog(&ampiRank{m: m, p: p, r: rr, n: nv})
		})
	}
	end, err := m.eng.Run()
	return end, m.moved, err
}

func (v *ampiRank) Rank() int { return v.r }
func (v *ampiRank) Size() int { return v.n }

// Compute occupies the vrank's PE exclusively: co-located vranks serialize,
// which is how overdecomposition hides communication latency (another vrank
// runs while this one blocks) but also adds switch overhead.
func (v *ampiRank) Compute(ns int64) {
	tok := v.m.peTok[v.m.peOf[v.r]]
	tok.Recv(v.p)
	v.p.Delay(v.m.costs.AMPISwitch + ns)
	v.m.loads[v.r] += ns
	// Re-read the PE in case the balancer moved us while we computed (the
	// token must return to the PE we took it from).
	tok.Send(1)
}

// Task executes serially on the owning vrank (AMPI shares load by moving
// ranks, not chunks).
func (v *ampiRank) Task(chunks []int64) {
	var sum int64
	for _, c := range chunks {
		sum += c
	}
	v.Compute(sum)
}

// nodeOf returns the node currently hosting a vrank.
func (m *ampiMachine) nodeOf(v int) int { return m.peNode[m.peOf[v]] }

func (v *ampiRank) Send(dst, bytes, tag int) {
	m := v.m
	c := m.costs
	ch := m.chanFor(msgKey{src: v.r, dst: dst, tag: tag})
	sameNode := m.nodeOf(v.r) == m.nodeOf(dst)
	samePE := m.peOf[v.r] == m.peOf[dst]
	switch {
	case samePE:
		// User-level threads on one PE: a queue hand-off.
		v.p.Delay(c.PureSendOverhead)
		ch.SendAfter(vmsg{bytes: bytes}, c.PureLatSameCore+int64(float64(bytes)*c.PureEagerPerByte))
	case sameNode && m.opts.SMP:
		// SMP mode: threads within the node process.
		v.p.Delay(c.PureSendOverhead * 2)
		ch.SendAfter(vmsg{bytes: bytes}, c.MPIIntraLatency/2+int64(float64(bytes)*c.PureEagerPerByte))
	case sameNode:
		// non-SMP: full process-to-process intra-node path.
		v.p.Delay(c.MPISendOverhead + int64(float64(bytes)*c.MPIEagerPerByte))
		ch.SendAfter(vmsg{bytes: bytes}, c.MPIIntraLatency)
	default:
		v.p.Delay(c.MPISendOverhead)
		ch.SendAfter(vmsg{bytes: bytes}, m.netDelay(bytes))
	}
}

func (v *ampiRank) Recv(src, bytes, tag int) {
	ch := v.m.chanFor(msgKey{src: src, dst: v.r, tag: tag})
	ch.Recv(v.p)
	v.p.Delay(v.m.costs.MPIRecvOverhead)
}

// Collectives: software trees over the vrank p2p layer (AMPI inherits
// MPI-style algorithms).
func (v *ampiRank) Barrier() {
	n := v.n
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		v.Send((v.r+dist)%n, 1, internalTag+round)
		v.Recv((v.r-dist+n)%n, 1, internalTag+round)
	}
}

func (v *ampiRank) Allreduce(bytes int) {
	n := v.n
	for mask := 1; mask < n; mask <<= 1 {
		if v.r&mask != 0 {
			v.Send(v.r-mask, bytes, internalTag+32)
			break
		}
		if v.r+mask < n {
			v.Recv(v.r+mask, bytes, internalTag+32)
			v.p.Delay(int64(float64(bytes) * v.m.costs.SPTDFoldPerByte))
		}
	}
	v.Bcast(bytes, 0)
}

func (v *ampiRank) Bcast(bytes, root int) {
	n := v.n
	vr := (v.r - root + n) % n
	toReal := func(u int) int { return (u + root) % n }
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			v.Recv(toReal(vr-mask), bytes, internalTag+33)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			v.Send(toReal(vr+mask), bytes, internalTag+33)
		}
		mask >>= 1
	}
}

// StepEnd triggers the measurement-based load balancer every AMPILBPeriod
// steps: synchronize, greedy-reassign vranks to PEs by measured load,
// charge migration costs, resume.
func (v *ampiRank) StepEnd() {
	v.step++
	period := v.m.costs.AMPILBPeriod
	if period <= 0 || v.step%period != 0 {
		return
	}
	m := v.m
	v.Barrier()
	var migrated bool
	if v.r == 0 {
		// Central balancer: cost scales with the vrank count.
		v.p.Delay(int64(m.nv) * 120)
		m.rebalance()
	}
	v.Barrier() // everyone sees the new assignment
	if m.pendingMove[v.r] {
		migrated = true
		m.pendingMove[v.r] = false
	}
	if migrated {
		v.p.Delay(m.costs.AMPIMigrateFixed + int64(float64(m.opts.StateBytes)*m.costs.AMPIMigratePerByte))
	}
	v.Barrier()
}

// rebalance greedily reassigns vranks to PEs by descending measured load
// (longest-processing-time heuristic) and marks movers.
func (m *ampiMachine) rebalance() int {
	type vl struct {
		v    int
		load int64
	}
	vs := make([]vl, m.nv)
	for i := range vs {
		vs[i] = vl{v: i, load: m.loads[i]}
	}
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].load != vs[b].load {
			return vs[a].load > vs[b].load
		}
		return vs[a].v < vs[b].v
	})
	npe := len(m.peTok)
	peLoad := make([]int64, npe)
	peCount := make([]int, npe)
	newPE := make([]int, m.nv)
	for _, e := range vs {
		best := 0
		for pe := 1; pe < npe; pe++ {
			if peCount[pe] < m.opts.VP && (peCount[best] >= m.opts.VP || peLoad[pe] < peLoad[best]) {
				best = pe
			}
		}
		newPE[e.v] = best
		peLoad[best] += e.load
		peCount[best]++
	}
	moved := 0
	for vr := 0; vr < m.nv; vr++ {
		if newPE[vr] != m.peOf[vr] {
			m.pendingMove[vr] = true
			m.peOf[vr] = newPE[vr]
			m.moved++
			moved++
		}
		m.loads[vr] = 0
	}
	return moved
}

// Irecv posts a receive.  AMPI sends never block in this model, so the
// deferred form simply records the channel for Wait.
func (v *ampiRank) Irecv(src, bytes, tag int) Pending {
	key := msgKey{src: src, dst: v.r, tag: tag}
	ch := v.m.chanFor(key)
	pr := &precv{bytes: bytes, intra: v.m.nodeOf(v.r) == v.m.nodeOf(src)}
	pr.ampiCh = ch
	return pr
}

// Wait completes a posted receive.
func (v *ampiRank) Wait(pr Pending) {
	if pr.ampiCh != nil && !pr.done {
		pr.ampiCh.Recv(v.p)
		pr.done = true
	}
	v.p.Delay(v.m.costs.MPIRecvOverhead)
}
