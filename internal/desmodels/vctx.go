package desmodels

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// VCtx is the virtual-time analogue of comm.Backend: the interface the DES
// workload skeletons are written against.  Payloads are sizes, computation
// is nanoseconds; the model charges whatever its runtime would.
type VCtx interface {
	Rank() int
	Size() int
	// Compute burns ns of CPU on this rank.
	Compute(ns int64)
	// Task executes a chunked compute region whose chunks cost the given
	// nanoseconds.  Under the Pure model, co-resident blocked ranks steal
	// chunks; under MPI it is a serial loop; under MPI+OpenMP it is a
	// fork-join parallel region.
	Task(chunks []int64)
	// Send starts a message; it blocks only as the modeled protocol blocks
	// (rendezvous sends complete when the receiver has copied; matching
	// progresses asynchronously, like a real MPI progress engine, so
	// symmetric exchange patterns cannot deadlock).
	Send(dst, bytes, tag int)
	// Recv blocks until the matching message is delivered (Pure ranks steal
	// while they wait).
	Recv(src, bytes, tag int)
	// Irecv posts a receive; complete it with Wait.
	Irecv(src, bytes, tag int) Pending
	// Wait blocks until a posted receive completes.
	Wait(p Pending)
	// Allreduce folds a payload of the given size across all ranks.
	Allreduce(bytes int)
	// Barrier synchronizes all ranks.
	Barrier()
	// Bcast distributes root's payload of the given size.
	Bcast(bytes, root int)
	// StepEnd marks an application step boundary (AMPI's load balancer hook;
	// a no-op elsewhere).
	StepEnd()
}

// internalTag is the base of the reserved tag space models use for their
// own collective trees.
const internalTag = 1 << 20

// msgKey identifies a simulated channel.
type msgKey struct{ src, dst, tag int }

// vmsg is a simulated message: a size, plus rendezvous state when the
// protocol needs the receiver to release the sender.
type vmsg struct {
	bytes int
	ack   *cluster.Chan[int] // rendezvous: sender blocks on this
}

// Pending is a posted receive awaiting completion (VCtx.Irecv's handle).
type Pending = *precv

// precv is one posted receive in the matching engine.
type precv struct {
	done bool
	// gotRvz records which protocol delivered (the receiver's post-wake
	// cost differs: eager pays a copy-out, rendezvous does not).
	gotRvz bool
	bytes  int
	intra  bool                // receiver-local: src on the same node
	wake   *cluster.Chan[int]  // park point for chan-waiting models (MPI)
	ampiCh *cluster.Chan[vmsg] // AMPI deferred-receive channel
	onDone func()              // wakes the receiving rank (model-specific)
}

// pmsg is an arrived message (or rendezvous RTS) in the matching engine.
type pmsg struct {
	bytes int
	rvz   bool
	// transferNs is the rendezvous payload transfer time, charged as
	// latency once both sides have arrived.
	transferNs int64
	// ack releases the blocked sender when the transfer completes.
	ack func()
}

// keyState is the per-channel matching state: a FIFO of arrived messages
// and a FIFO of posted receives (MPI non-overtaking per key).
type keyState struct {
	msgs   []pmsg
	posted []*precv
}

// machine is the shared plumbing of all models: the engine, the placement,
// the cost table, the per-key channels, and the matching engine.
type machine struct {
	eng   *cluster.Engine
	place *topology.Placement
	costs CostModel
	inbox map[msgKey]*cluster.Chan[vmsg]
	match map[msgKey]*keyState
}

func newMachine(place *topology.Placement, costs CostModel) *machine {
	return &machine{
		eng:   cluster.New(),
		place: place,
		costs: costs,
		inbox: make(map[msgKey]*cluster.Chan[vmsg]),
		match: make(map[msgKey]*keyState),
	}
}

// chanFor returns the channel for a key, creating it on demand.  The engine
// is single-threaded (strict process/engine alternation), so the map needs
// no lock.
func (m *machine) chanFor(k msgKey) *cluster.Chan[vmsg] {
	if c, ok := m.inbox[k]; ok {
		return c
	}
	c := cluster.NewChan[vmsg](m.eng, fmt.Sprintf("ch(%d->%d#%d)", k.src, k.dst, k.tag))
	m.inbox[k] = c
	return c
}

func (m *machine) stateFor(k msgKey) *keyState {
	if s, ok := m.match[k]; ok {
		return s
	}
	s := &keyState{}
	m.match[k] = s
	return s
}

// deliverMsg hands an arrived message (or RTS) to the matching engine; it
// runs in proc or engine-callback context.
func (m *machine) deliverMsg(k msgKey, msg pmsg) {
	s := m.stateFor(k)
	s.msgs = append(s.msgs, msg)
	m.progress(s)
}

// postRecv registers a posted receive with the matching engine.
func (m *machine) postRecv(k msgKey, pr *precv) {
	s := m.stateFor(k)
	s.posted = append(s.posted, pr)
	m.progress(s)
}

// progress matches messages against posted receives in FIFO order — the
// asynchronous progress a real MPI library performs.  Eager matches
// complete immediately; rendezvous matches complete after the transfer
// time, then release the sender.
func (m *machine) progress(s *keyState) {
	for len(s.msgs) > 0 && len(s.posted) > 0 {
		msg := s.msgs[0]
		s.msgs = s.msgs[:copy(s.msgs, s.msgs[1:])]
		pr := s.posted[0]
		s.posted = s.posted[:copy(s.posted, s.posted[1:])]
		if !msg.rvz {
			pr.done = true
			pr.onDone()
			continue
		}
		m.eng.At(msg.transferNs, func() {
			pr.done = true
			pr.gotRvz = true
			pr.onDone()
			if msg.ack != nil {
				msg.ack()
			}
		})
	}
}

// wireCost returns the modeled one-way delivery delay between two ranks for
// an eager message of the given size, per the runtime kind.
func (m *machine) interNode(a, b int) bool { return !m.place.SameNode(a, b) }

func (m *machine) netDelay(bytes int) int64 {
	return m.costs.NetLatency + m.costs.NetPerMsgCPU + int64(float64(bytes)*m.costs.NetPerByte)
}

// distClass maps a placement distance to the cost-model class index.
func (m *machine) distClass(a, b int) int {
	return int(m.place.DistanceBetween(a, b))
}

// Placement helpers shared by models.

// defaultPlacement builds an SMP placement of n ranks, ranksPerNode per
// 64-thread Cori node (0 = fill).
func defaultPlacement(n, ranksPerNode int) (*topology.Placement, error) {
	if ranksPerNode <= 0 {
		ranksPerNode = 64
	}
	nodes := (n + ranksPerNode - 1) / ranksPerNode
	return topology.NewPlacement(topology.CoriSpec(nodes), n, ranksPerNode, topology.SMP, nil)
}
