package desmodels

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// mpiRank is one simulated MPI process (the baseline runtime model):
// locked matching engine, eager two-copy / rendezvous single-copy
// protocols, binomial-tree collectives, no work sharing between ranks.
type mpiRank struct {
	m *machine
	p *cluster.Proc
	r int
	n int
}

// RunMPI simulates prog over n MPI ranks and returns the end-to-end virtual
// nanoseconds (the slowest rank's finish time).
func RunMPI(n, ranksPerNode int, costs CostModel, prog func(VCtx)) (int64, error) {
	place, err := defaultPlacement(n, ranksPerNode)
	if err != nil {
		return 0, err
	}
	return RunMPIPlaced(place, costs, prog)
}

// RunMPIPlaced is RunMPI with an explicit placement.
func RunMPIPlaced(place *topology.Placement, costs CostModel, prog func(VCtx)) (int64, error) {
	m := newMachine(place, costs)
	n := place.NRank
	for r := 0; r < n; r++ {
		rr := r
		m.eng.Spawn(fmt.Sprintf("mpi%d", rr), func(p *cluster.Proc) {
			prog(&mpiRank{m: m, p: p, r: rr, n: n})
		})
	}
	return m.eng.Run()
}

func (v *mpiRank) Rank() int { return v.r }
func (v *mpiRank) Size() int { return v.n }

func (v *mpiRank) Compute(ns int64) { v.p.Delay(ns) }

// Task is a plain serial loop: an MPI process has no one to share with.
func (v *mpiRank) Task(chunks []int64) {
	total := int64(0)
	for _, c := range chunks {
		total += c
	}
	v.p.Delay(total)
}

func (v *mpiRank) Send(dst, bytes, tag int) {
	c := v.m.costs
	key := msgKey{src: v.r, dst: dst, tag: tag}
	inter := v.m.interNode(v.r, dst)
	if bytes < c.MPIEagerMax {
		// Eager: copy into the library buffer (first copy), deliver; the
		// sender is immediately free (buffered semantics).
		over := c.MPISendOverhead
		var wire int64
		if inter {
			wire = v.m.netDelay(bytes)
		} else {
			over += int64(float64(bytes) * c.MPIEagerPerByte)
			wire = c.MPIIntraLatency
		}
		v.p.Delay(over)
		v.m.eng.At(wire, func() { v.m.deliverMsg(key, pmsg{bytes: bytes}) })
		return
	}
	// Rendezvous: publish an RTS, block until the receiver's matching
	// receive has pulled the payload (the matching engine handles the case
	// where both sides are inside Send simultaneously).
	v.p.Delay(c.MPISendOverhead)
	ackCh := cluster.NewChan[int](v.m.eng, "rvz-ack")
	var rtsWire, transfer int64
	if inter {
		rtsWire = v.m.netDelay(0)
		transfer = c.MPIRvzHandshake + v.m.netDelay(bytes)
	} else {
		rtsWire = c.MPIIntraLatency
		transfer = c.MPIRvzHandshake + int64(float64(bytes)*c.MPIRvzPerByte)
	}
	v.m.eng.At(rtsWire, func() {
		v.m.deliverMsg(key, pmsg{bytes: bytes, rvz: true, transferNs: transfer, ack: func() { ackCh.Send(1) }})
	})
	ackCh.Recv(v.p)
}

// Irecv posts a receive with the matching engine.
func (v *mpiRank) Irecv(src, bytes, tag int) Pending {
	key := msgKey{src: src, dst: v.r, tag: tag}
	doneCh := cluster.NewChan[int](v.m.eng, "recv-done")
	pr := &precv{bytes: bytes, onDone: func() { doneCh.Send(1) }}
	pr.wake = doneCh
	pr.intra = !v.m.interNode(v.r, src)
	v.m.postRecv(key, pr)
	return pr
}

// Wait blocks until the posted receive completes, then charges the
// receiver-side costs (matching overhead; eager intra-node copy-out).
func (v *mpiRank) Wait(pr Pending) {
	if !pr.done {
		pr.wake.Recv(v.p)
	}
	c := v.m.costs
	cost := c.MPIRecvOverhead
	if !pr.gotRvz && pr.intra {
		cost += int64(float64(pr.bytes) * c.MPIEagerPerByte) // second copy
	}
	v.p.Delay(cost)
}

func (v *mpiRank) Recv(src, bytes, tag int) {
	v.Wait(v.Irecv(src, bytes, tag))
}

// Barrier is the dissemination barrier over simulated p2p.
func (v *mpiRank) Barrier() {
	n := v.n
	if n == 1 {
		return
	}
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (v.r + dist) % n
		from := (v.r - dist + n) % n
		v.Send(to, 1, internalTag+round)
		v.Recv(from, 1, internalTag+round)
	}
}

// Allreduce is binomial reduce to rank 0 plus binomial broadcast, the
// classic small-payload MPI algorithm.
func (v *mpiRank) Allreduce(bytes int) {
	v.reduceTo(0, bytes)
	v.Bcast(bytes, 0)
}

func (v *mpiRank) reduceTo(root, bytes int) {
	n := v.n
	vr := (v.r - root + n) % n
	toReal := func(u int) int { return (u + root) % n }
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			v.Send(toReal(vr-mask), bytes, internalTag+32)
			return
		}
		if vr+mask < n {
			v.Recv(toReal(vr+mask), bytes, internalTag+32)
			// element-wise fold
			v.p.Delay(int64(float64(bytes) * v.m.costs.SPTDFoldPerByte))
		}
	}
}

func (v *mpiRank) Bcast(bytes, root int) {
	n := v.n
	vr := (v.r - root + n) % n
	toReal := func(u int) int { return (u + root) % n }
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			v.Recv(toReal(vr-mask), bytes, internalTag+33)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			v.Send(toReal(vr+mask), bytes, internalTag+33)
		}
		mask >>= 1
	}
}

func (v *mpiRank) StepEnd() {}
