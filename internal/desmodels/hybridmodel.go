package desmodels

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// The MPI+OpenMP hybrid model (the paper's MPI+OMP comparison lines in
// Figs. 5a/5c): p MPI processes of k threads each.  prog runs once per
// process; Task regions execute fork-join across the k threads with static
// chunk scheduling, everything else is serial (Amdahl's-law penalty the
// paper highlights), and messaging pays full MPI process costs.

type hybridRank struct {
	mpiRank
	k int
}

// RunHybrid simulates prog over p MPI processes each owning k OpenMP
// threads (so p*k cores).  ranksPerNode counts processes per node (16 in
// the paper's CoMD runs: 16 processes x 4 threads on 64-thread nodes).
func RunHybrid(p, k, ranksPerNode int, costs CostModel, prog func(VCtx)) (int64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("desmodels: hybrid thread count must be positive, got %d", k)
	}
	place, err := defaultPlacement(p, ranksPerNode)
	if err != nil {
		return 0, err
	}
	m := newMachine(place, costs)
	for r := 0; r < p; r++ {
		rr := r
		m.eng.Spawn(fmt.Sprintf("hyb%d", rr), func(proc *cluster.Proc) {
			prog(&hybridRank{mpiRank: mpiRank{m: m, p: proc, r: rr, n: p}, k: k})
		})
	}
	return m.eng.Run()
}

// Task is an OpenMP parallel region: fork-join overhead plus the makespan
// of static chunk scheduling over k threads.
func (v *hybridRank) Task(chunks []int64) {
	sums := make([]int64, v.k)
	for i, c := range chunks {
		sums[i%v.k] += c
	}
	var wall int64
	for _, s := range sums {
		if s > wall {
			wall = s
		}
	}
	v.p.Delay(v.m.costs.OMPForkJoin + wall)
}

// ---- OpenMP-only model (single node; the OpenMP lines of Fig. 7) ----

// ompNode is the shared state of the OpenMP thread team.
type ompNode struct {
	arrived int // counter-update position assignment
	seq0    int // completed arrivals this round
	seq     int // published round count
	sigs    []*cluster.Signal
}

type ompRank struct {
	m     *machine
	nd    *ompNode
	p     *cluster.Proc
	r, n  int
	round int
}

// RunOMP simulates prog over n OpenMP threads on one node.  Send/Recv are
// not supported (threads share memory; the paper's OpenMP comparisons are
// collectives and parallel regions only).
func RunOMP(n int, costs CostModel, prog func(VCtx)) (int64, error) {
	place, err := defaultPlacement(n, 0)
	if err != nil {
		return 0, err
	}
	m := newMachine(place, costs)
	nd := &ompNode{sigs: make([]*cluster.Signal, n)}
	for i := range nd.sigs {
		nd.sigs[i] = &cluster.Signal{}
	}
	for r := 0; r < n; r++ {
		rr := r
		m.eng.Spawn(fmt.Sprintf("omp%d", rr), func(p *cluster.Proc) {
			prog(&ompRank{m: m, nd: nd, p: p, r: rr, n: n})
		})
	}
	return m.eng.Run()
}

func (v *ompRank) Rank() int        { return v.r }
func (v *ompRank) Size() int        { return v.n }
func (v *ompRank) Compute(ns int64) { v.p.Delay(ns) }
func (v *ompRank) StepEnd()         {}

func (v *ompRank) Task(chunks []int64) {
	// An OpenMP-only "task" on the calling thread: serial.
	var sum int64
	for _, c := range chunks {
		sum += c
	}
	v.p.Delay(sum)
}

func (v *ompRank) Send(int, int, int) { panic("desmodels: OpenMP model has no messaging") }
func (v *ompRank) Recv(int, int, int) { panic("desmodels: OpenMP model has no messaging") }

// Barrier is the central-counter barrier: every thread contends on one
// atomic counter, serializing the arrivals (contrast with Pure's pairwise
// SPTD, Fig. 7b's 8x gap).
func (v *ompRank) Barrier() { v.counterCollective(0) }

// Allreduce is barrier plus a serialized critical-section fold.
func (v *ompRank) Allreduce(bytes int) { v.counterCollective(bytes) }

func (v *ompRank) counterCollective(bytes int) {
	c := v.m.costs
	v.round++
	round := v.round
	nd := v.nd
	// The central counter (and the critical-section fold, for reductions)
	// serializes arrivals: the i-th arrival waits behind i earlier updates
	// of the contended cacheline.  This is the serialization Pure's pairwise
	// SPTD avoids (Fig. 7b's up-to-8x gap).
	pos := nd.arrived
	nd.arrived++
	per := c.OMPCounterPerThread
	if bytes > 0 {
		per += int64(float64(bytes) * c.SPTDFoldPerByte * 2)
	}
	v.p.Delay(per * int64(pos+1))
	nd.seq0++
	if nd.seq0 == v.n {
		nd.seq0 = 0
		nd.arrived = 0
		nd.seq++
		for _, s := range nd.sigs {
			s.Pulse()
		}
		return
	}
	for nd.seq < round {
		nd.sigs[v.r].Wait(v.p, "omp-barrier")
	}
}

func (v *ompRank) Bcast(bytes, root int) {
	// Shared memory: a barrier, then everyone reads the buffer.
	v.Barrier()
	v.p.Delay(int64(float64(bytes) * v.m.costs.PureEagerPerByte))
}

// ---- DMAPP variant of the MPI model (Fig. 7a's MPI DMAPP line) ----

type dmappRank struct {
	mpiRank
}

// RunMPIDMAPP is RunMPI with Cray's DMAPP hardware-offload collectives
// enabled: 8-byte all-reduces ride the Aries collective engine between node
// leaders instead of the software tree.  (DMAPP supports only a subset of
// collectives and only 8 B payloads — paper §6.)
func RunMPIDMAPP(n, ranksPerNode int, costs CostModel, prog func(VCtx)) (int64, error) {
	place, err := defaultPlacement(n, ranksPerNode)
	if err != nil {
		return 0, err
	}
	m := newMachine(place, costs)
	for r := 0; r < n; r++ {
		rr := r
		m.eng.Spawn(fmt.Sprintf("dmapp%d", rr), func(p *cluster.Proc) {
			prog(&dmappRank{mpiRank{m: m, p: p, r: rr, n: n}})
		})
	}
	return m.eng.Run()
}

// Allreduce uses the hardware engine for 8 B payloads: software tree within
// the node to the leader, a hardware tree across nodes whose per-hop cost is
// DMAPPPerHop, then a software broadcast within the node.
func (v *dmappRank) Allreduce(bytes int) {
	if bytes > 8 {
		v.mpiRank.Allreduce(bytes)
		return
	}
	local := v.m.place.RanksOnNode(v.m.place.NodeOf(v.r))
	li := 0
	for i, r := range local {
		if r == v.r {
			li = i
			break
		}
	}
	nLocal := len(local)
	// Node-local binomial reduce to the node leader.
	for mask := 1; mask < nLocal; mask <<= 1 {
		if li&mask != 0 {
			v.Send(local[li-mask], bytes, internalTag+50)
			goto wait
		}
		if li+mask < nLocal {
			v.Recv(local[li+mask], bytes, internalTag+50)
			v.p.Delay(int64(float64(bytes) * v.m.costs.SPTDFoldPerByte))
		}
	}
	// Leader: ride the hardware collective across nodes.
	{
		nodes := v.m.place.NodesUsed()
		if nodes > 1 {
			hops := int64(math.Ceil(math.Log2(float64(nodes))))
			v.hwCollective(hops)
		}
	}
wait:
	// Node-local broadcast of the result.
	v.localBcast(local, li, bytes)
}

// hwCollective synchronizes the node leaders through the Aries collective
// engine: a dissemination exchange whose per-hop cost is the hardware hop
// cost rather than the full software message path.
func (v *dmappRank) hwCollective(hops int64) {
	place := v.m.place
	var leaders []int
	for nid := 0; nid < place.Spec.Nodes; nid++ {
		rs := place.RanksOnNode(nid)
		if len(rs) > 0 {
			leaders = append(leaders, rs[0])
		}
	}
	idx := 0
	for i, l := range leaders {
		if l == v.r {
			idx = i
			break
		}
	}
	n := len(leaders)
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := leaders[(idx+dist)%n]
		from := leaders[((idx-dist)%n+n)%n]
		ch := v.m.chanFor(msgKey{src: v.r, dst: to, tag: internalTag + 60 + round})
		ch.SendAfter(vmsg{bytes: 8}, v.m.costs.DMAPPPerHop)
		in := v.m.chanFor(msgKey{src: from, dst: v.r, tag: internalTag + 60 + round})
		in.Recv(v.p)
	}
	_ = hops
}

func (v *dmappRank) localBcast(local []int, li, bytes int) {
	nLocal := len(local)
	mask := 1
	for mask < nLocal {
		if li&mask != 0 {
			v.Recv(local[li-mask], bytes, internalTag+51)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if li+mask < nLocal {
			v.Send(local[li+mask], bytes, internalTag+51)
		}
		mask >>= 1
	}
}

// Irecv is unsupported in the OpenMP-only model (threads share memory).
func (v *ompRank) Irecv(int, int, int) Pending {
	panic("desmodels: OpenMP model has no messaging")
}

// Wait is unsupported in the OpenMP-only model.
func (v *ompRank) Wait(Pending) {
	panic("desmodels: OpenMP model has no messaging")
}
