// Package desmodels builds virtual Pure, MPI, MPI+OpenMP, and AMPI runtimes
// on the discrete-event simulator (internal/cluster).  Each model implements
// the same VCtx interface the workload skeletons (internal/workloads) are
// written against, so one skeleton regenerates every line of a figure.
//
// The models are *structural*: collectives are simulated as the actual
// message/synchronization patterns each runtime uses (binomial trees over
// the matching engine for MPI, per-thread dropbox gathers for Pure's SPTD,
// partitioned folds for large payloads), and Pure's work stealing is an
// explicit SSW-Loop in virtual time — a rank blocked in Recv really does
// steal chunks from co-resident active tasks until its message arrives.
// Consequently who-wins and where crossovers fall *emerge* from the cost
// constants below rather than being baked in per figure.
package desmodels

// CostModel is the set of per-operation software/hardware costs, in
// nanoseconds (or ns/byte).  Defaults are calibrated to the regimes the
// paper reports for Cori (Cray XC40, Haswell, Aries) — see DESIGN.md §3 —
// and cross-checked against this repository's real-runtime microbenchmarks
// where the host allows.
type CostModel struct {
	// ---- MPI baseline point-to-point (process model, XPMEM-style) ----

	// MPISendOverhead/MPIRecvOverhead are per-message library costs
	// (matching queue, descriptor management) on each side.
	MPISendOverhead int64
	MPIRecvOverhead int64
	// MPIIntraLatency is the one-way intra-node small-message latency floor
	// (lock + queue + wakeup), largely placement-independent because the
	// payload crosses a shared segment either way.
	MPIIntraLatency int64
	// MPIEagerPerByte is the two-copy eager cost; MPIRvzPerByte the
	// single-copy (XPMEM-mapped) rendezvous cost; MPIRvzHandshake the
	// RTS/CTS round trip.
	MPIEagerPerByte float64
	MPIRvzPerByte   float64
	MPIRvzHandshake int64
	// MPIEagerMax is the eager/rendezvous threshold in bytes.
	MPIEagerMax int

	// ---- Pure point-to-point (thread model, lock-free queues) ----

	PureSendOverhead int64
	PureRecvOverhead int64
	// Intra-node one-way latency by placement class (the PBQ slot bounces
	// between cache levels, so placement matters — Fig. 6's three curves).
	PureLatSameCore  int64
	PureLatSharedL3  int64
	PureLatCrossNUMA int64
	// PureEagerPerByte: two cache-resident copies; PureRvzPerByte: single
	// copy into the posted buffer.
	PureEagerPerByte float64
	PureRvzPerByte   float64
	PureEagerMax     int

	// ---- Inter-node network (Cray Aries) ----

	NetLatency   int64   // one-way zero-byte latency
	NetPerByte   float64 // 1/bandwidth
	NetPerMsgCPU int64   // host-side per-message cost
	// PureThreadMultiplePenalty is the extra per-message cost Pure pays for
	// running MPI_THREAD_MULTIPLE on its inter-node leg (paper §6).
	PureThreadMultiplePenalty int64

	// ---- Collectives ----

	// SPTDCheck is the leader's per-dropbox sequence check; SPTDFoldPerByte
	// the element fold in tree hops (cold operands); SPTDLeaderFoldPerByte
	// the leader's vectorized fold over the cache-resident dropboxes;
	// SPTDSignal a pairwise publish/observe; SPTDCopyOut the non-leader
	// result copy floor.
	SPTDCheck             int64
	SPTDFoldPerByte       float64
	SPTDLeaderFoldPerByte float64
	SPTDSignal            int64
	SPTDCopyOut           int64
	// PRPerByte is the Partitioned Reducer's per-byte fold (each thread
	// reads every rank's slice of its chunk; wall-clock cost is per-byte of
	// payload since chunks run concurrently).
	PRPerByte float64
	// PRThreshold is the SPTD/PR payload split (paper: 2 KiB).
	PRThreshold int

	// OMPCounterPerThread is the serialized per-thread cost of an
	// OpenMP-style central-counter barrier/reduction.
	OMPCounterPerThread int64
	// OMPForkJoin is the cost of opening+closing an OpenMP parallel region.
	OMPForkJoin int64

	// DMAPPPerHop is the per-tree-hop cost of the Aries hardware-offload
	// collective (8-byte payloads only, like Cray's DMAPP library).
	DMAPPPerHop int64

	// ---- Task scheduling ----

	// StealProbe is one SSW probe + chunk fetch-add ("a handful of assembly
	// instructions and 1-3 cache misses").
	StealProbe int64
	// ChunkOverhead is the per-chunk dispatch cost on any executor.
	ChunkOverhead int64

	// ---- AMPI ----

	// AMPISwitch is a user-level-thread context switch between virtual ranks.
	AMPISwitch int64
	// AMPIMigrateFixed/PerByte cost one vrank migration during load
	// balancing.
	AMPIMigrateFixed   int64
	AMPIMigratePerByte float64
	// AMPILBPeriod is the load-balancer invocation period in app steps.
	AMPILBPeriod int
}

// Paper returns the default calibration.  The constants are set so that the
// *measured paper ratios* hold in the small benchmarks that anchor them:
// intra-node small-message speedup ≈17x same-core / ≈5x shared-L3 / ≈2x
// cross-NUMA (Fig. 6 left), large-message speedup ≈1.2-2x (Fig. 6 right),
// single-node 64-rank barrier ≈5x over MPI and ≈8x over OpenMP (Fig. 7b),
// 8 B all-reduce ≈3.5x single-node shrinking toward ≈1.1x at 16k ranks
// (Fig. 7a).
func Paper() CostModel {
	return CostModel{
		MPISendOverhead: 200,
		MPIRecvOverhead: 200,
		MPIIntraLatency: 400,
		MPIEagerPerByte: 0.25,
		MPIRvzPerByte:   0.09,
		MPIRvzHandshake: 1200,
		MPIEagerMax:     8 << 10,

		PureSendOverhead: 20,
		PureRecvOverhead: 20,
		PureLatSameCore:  8,
		PureLatSharedL3:  90,
		PureLatCrossNUMA: 260,
		PureEagerPerByte: 0.10,
		PureRvzPerByte:   0.06,
		PureEagerMax:     8 << 10,

		NetLatency:                1300,
		NetPerByte:                0.10,
		NetPerMsgCPU:              250,
		PureThreadMultiplePenalty: 150,

		SPTDCheck:             15,
		SPTDFoldPerByte:       0.25,
		SPTDLeaderFoldPerByte: 0.06,
		SPTDSignal:            40,
		SPTDCopyOut:           30,
		PRPerByte:             0.30,
		PRThreshold:           2 << 10,

		OMPCounterPerThread: 120,
		OMPForkJoin:         900,

		DMAPPPerHop: 600,

		StealProbe:    30,
		ChunkOverhead: 60,

		AMPISwitch:         250,
		AMPIMigrateFixed:   20000,
		AMPIMigratePerByte: 0.10,
		AMPILBPeriod:       8,
	}
}

// p2pIntraPureLatency returns Pure's one-way latency for a placement class.
func (c CostModel) p2pIntraPureLatency(dist int) int64 {
	switch dist {
	case 0, 1: // same hwthread / hyperthread siblings
		return c.PureLatSameCore
	case 2: // shared L3
		return c.PureLatSharedL3
	default: // cross NUMA
		return c.PureLatCrossNUMA
	}
}
