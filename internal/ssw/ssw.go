// Package ssw implements the Spin-Steal-Wait loop (paper §4.0.2).
//
// When a Pure rank blocks — waiting for a message, a collective phase, or a
// task chunk — it does not sleep.  It spins on the blocking condition and,
// between probes, attempts to steal one chunk of any Pure Task that is open
// for stealing on its node, so idle cycles are soaked up by useful work.
//
// The paper pins one rank per hardware thread and spins unconditionally.
// This port runs ranks as goroutines, frequently oversubscribed onto far
// fewer cores (the development host has a single core), so unbounded
// spinning would starve the very goroutine being waited on.  Waiter
// therefore spins for a bounded budget and then yields to the Go scheduler
// (runtime.Gosched), keeping the lock-free fast paths byte-identical while
// preserving liveness.  The budget is configurable; with enough real cores a
// large budget recovers the paper's pure-spin behaviour.
package ssw

import (
	"runtime"
	"time"
)

// DefaultSpinBudget is how many condition probes a waiter performs between
// yields when the caller does not specify one.
const DefaultSpinBudget = 64

// WaitIdle's backoff: after idleYieldRounds yield boundaries without
// progress the wait starts sleeping, doubling from idleSleepMin up to
// idleSleepMax.  The cap bounds the wakeup latency a long wait pays once
// its condition finally completes; the first few 1–2µs sleeps cost almost
// nothing on a wait that was about to be satisfied anyway.
const (
	idleYieldRounds = 4
	idleSleepMin    = time.Microsecond
	idleSleepMax    = 128 * time.Microsecond
)

// Stealer attempts one unit of stolen work and reports whether it stole
// anything.  The Pure Task scheduler implements this; waits outside any
// runtime (tests, mpibase) pass nil.
type Stealer interface {
	TrySteal() bool
}

// AbortPanic is the value Wait panics with when its Poison hook reports that
// the runtime has been aborted.  It unwinds the blocked rank's goroutine
// through application code; the runtime's rank bootstrap recovers it and
// records the rank as unwound-by-abort rather than as a new failure.
type AbortPanic struct{ Err error }

func (a AbortPanic) Error() string { return a.Err.Error() }

// Waiter is a reusable SSW-Loop bound to one rank's stealer.
type Waiter struct {
	// Steal, if non-nil, is probed between condition checks.
	Steal Stealer
	// SpinBudget is the number of probes between yields; zero means
	// DefaultSpinBudget.
	SpinBudget int
	// Poison, if non-nil, is consulted at every yield boundary (so the
	// satisfied-on-first-probe fast path never pays for it).  A non-nil
	// error makes Wait panic with AbortPanic{err}, unwinding the blocked
	// rank: this is how a poisoned runtime reclaims ranks parked in any of
	// the SSW-Loop's "dozens of places" instead of hanging forever.
	Poison func() error
	// Progress, if non-nil, runs at every yield boundary after the poison
	// check.  The runtime uses it to apply incoming one-sided (RMA)
	// operations targeting the blocked rank, so a rank parked in any wait —
	// a receive, a collective, a fence — still exposes its windows and
	// advances remote origins (the paper's runtime makes the same promise
	// for message progress via its helper threads).
	Progress func()
}

// Wait blocks until cond returns true, stealing task chunks while it waits.
// This is the loop the paper uses "in dozens of places in the Pure runtime":
//
//	for !cond() { if couldn't steal { maybe yield } }
//
// A successful steal resets the spin budget, because running a chunk was
// forward progress (and took long enough that re-probing immediately is
// cheap relative to the work done).
func (w *Waiter) Wait(cond func() bool) {
	budget := w.SpinBudget
	if budget <= 0 {
		budget = DefaultSpinBudget
	}
	spins := 0
	for !cond() {
		if w.Steal != nil && w.Steal.TrySteal() {
			spins = 0 // stole a chunk: that's progress, keep spinning
			continue
		}
		spins++
		if spins >= budget {
			if w.Poison != nil {
				if err := w.Poison(); err != nil {
					panic(AbortPanic{Err: err})
				}
			}
			if w.Progress != nil {
				w.Progress()
			}
			runtime.Gosched()
			spins = 0
		}
	}
}

// WaitIdle is Wait for conditions completed by background I/O — an
// inter-node frame delivered by a transport reader goroutine — rather than
// by another rank's store.  Pure yield-spinning starves the Go netpoller:
// goroutines that Gosched in a loop keep the run queues non-empty, so no P
// ever parks in network poll and socket readiness is only discovered by
// sysmon's ~10ms fallback — every cross-node message pays ~10ms however
// fast the wire is.  After a few yield rounds without progress WaitIdle
// sleeps with exponential backoff instead, parking the goroutine on a
// timer so a P goes idle and the netpoller delivers the frame promptly.
//
// Shared-memory waits must keep using Wait: their completer is another
// spinning rank that owns (or shares) a hardware thread, the paper's
// assumption, and a sleep there only adds latency.  Steal, Poison and
// Progress behave exactly as in Wait, and a successful steal resets the
// backoff — running a chunk was progress.
func (w *Waiter) WaitIdle(cond func() bool) {
	budget := w.SpinBudget
	if budget <= 0 {
		budget = DefaultSpinBudget
	}
	spins, rounds := 0, 0
	sleep := idleSleepMin
	for !cond() {
		if w.Steal != nil && w.Steal.TrySteal() {
			spins, rounds, sleep = 0, 0, idleSleepMin
			continue
		}
		spins++
		if spins >= budget {
			if w.Poison != nil {
				if err := w.Poison(); err != nil {
					panic(AbortPanic{Err: err})
				}
			}
			if w.Progress != nil {
				w.Progress()
			}
			spins = 0
			if rounds++; rounds <= idleYieldRounds {
				runtime.Gosched()
			} else {
				time.Sleep(sleep)
				if sleep < idleSleepMax {
					sleep *= 2
				}
			}
		}
	}
}

// Func returns the waiter as a plain wait function, the shape the collective
// structures accept.
func (w *Waiter) Func() func(cond func() bool) { return w.Wait }

// SpinWait is a stealer-less wait used by code that has no task scheduler in
// scope (the MPI baseline, unit tests).
func SpinWait(cond func() bool) {
	(&Waiter{}).Wait(cond)
}
