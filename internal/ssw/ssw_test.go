package ssw

import (
	"errors"
	"sync/atomic"
	"testing"
)

type countingStealer struct {
	available atomic.Int64
	stolen    atomic.Int64
}

func (s *countingStealer) TrySteal() bool {
	for {
		n := s.available.Load()
		if n == 0 {
			return false
		}
		if s.available.CompareAndSwap(n, n-1) {
			s.stolen.Add(1)
			return true
		}
	}
}

func TestWaitReturnsImmediatelyWhenConditionHolds(t *testing.T) {
	w := &Waiter{}
	called := 0
	w.Wait(func() bool { called++; return true })
	if called != 1 {
		t.Fatalf("condition evaluated %d times, want 1", called)
	}
}

func TestWaitStealsWhileBlocked(t *testing.T) {
	s := &countingStealer{}
	s.available.Store(10)
	w := &Waiter{Steal: s}
	probes := 0
	w.Wait(func() bool {
		probes++
		return probes > 5 // becomes true after a few probes
	})
	if s.stolen.Load() == 0 {
		t.Error("waiter never stole despite available work")
	}
}

func TestWaitWithoutStealerTerminates(t *testing.T) {
	done := atomic.Bool{}
	go func() { done.Store(true) }()
	SpinWait(done.Load)
	if !done.Load() {
		t.Fatal("SpinWait returned before condition")
	}
}

func TestWaitDrainsAllStealsBeforeParking(t *testing.T) {
	// With work available and condition false-then-true, every probe
	// between checks should steal (work-first policy).
	s := &countingStealer{}
	s.available.Store(3)
	w := &Waiter{Steal: s, SpinBudget: 4}
	probes := 0
	w.Wait(func() bool {
		probes++
		return s.available.Load() == 0 // condition satisfied once work drained
	})
	if got := s.stolen.Load(); got != 3 {
		t.Fatalf("stole %d, want 3", got)
	}
}

func TestFuncAdapter(t *testing.T) {
	w := &Waiter{}
	f := w.Func()
	n := 0
	f(func() bool { n++; return n >= 3 })
	if n != 3 {
		t.Fatalf("adapter evaluated %d times, want 3", n)
	}
}

func TestSpinBudgetDefault(t *testing.T) {
	// A zero budget must fall back to the default and still terminate.
	w := &Waiter{SpinBudget: 0}
	n := 0
	w.Wait(func() bool { n++; return n > DefaultSpinBudget*2 })
	if n <= DefaultSpinBudget*2 {
		t.Fatal("wait exited early")
	}
}

func TestPoisonUnwindsBlockedWait(t *testing.T) {
	poisoned := errors.New("runtime aborted")
	armed := atomic.Bool{}
	w := &Waiter{
		SpinBudget: 4,
		Poison: func() error {
			if armed.Load() {
				return poisoned
			}
			return nil
		},
	}
	defer func() {
		p := recover()
		ap, ok := p.(AbortPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want AbortPanic", p, p)
		}
		if ap.Err != poisoned {
			t.Fatalf("AbortPanic carries %v, want the poison error", ap.Err)
		}
	}()
	probes := 0
	w.Wait(func() bool {
		probes++
		if probes > 2 {
			armed.Store(true)
		}
		return false // never satisfied; only the poison can end this wait
	})
	t.Fatal("Wait returned instead of unwinding")
}

func TestPoisonNotConsultedOnFastPath(t *testing.T) {
	// A condition satisfied on the first probe must never pay for (or be
	// failed by) the poison hook.
	w := &Waiter{Poison: func() error { t.Fatal("poison consulted on fast path"); return nil }}
	w.Wait(func() bool { return true })
}
