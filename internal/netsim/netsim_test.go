package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCostFormula(t *testing.T) {
	c := Config{LatencyNs: 1000, BytesPerNs: 10, PerMsgCPUNs: 200}
	if got := c.Cost(0); got != 1200 {
		t.Fatalf("Cost(0) = %d, want 1200", got)
	}
	if got := c.Cost(10000); got != 1200+1000 {
		t.Fatalf("Cost(10000) = %d, want 2200", got)
	}
}

func TestCostZeroBandwidthIsLatencyOnly(t *testing.T) {
	c := Config{LatencyNs: 500}
	if got := c.Cost(1 << 20); got != 500 {
		t.Fatalf("Cost = %d, want 500", got)
	}
}

func TestAriesRegime(t *testing.T) {
	a := Aries()
	// ~1.3us zero-byte, ~10 GB/s.
	if a.Cost(0) < 1000 || a.Cost(0) > 3000 {
		t.Fatalf("Aries zero-byte cost %d outside ~1.3us regime", a.Cost(0))
	}
	mb := a.Cost(1 << 20)
	if mb < 100_000 || mb > 200_000 {
		t.Fatalf("Aries 1MiB cost %d outside ~10GB/s regime", mb)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	l := Loopback()
	if l.Cost(1<<20) != 0 {
		t.Fatalf("loopback cost %d, want 0", l.Cost(1<<20))
	}
	start := time.Now()
	New(l).Transfer(1 << 20)
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("loopback transfer took real time")
	}
}

// Property: cost is monotone in message size.
func TestCostMonotoneProperty(t *testing.T) {
	c := Aries()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.Cost(x) <= c.Cost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTakesModeledTime(t *testing.T) {
	n := New(Config{LatencyNs: 2_000_000}) // 2ms, well above timer noise
	start := time.Now()
	n.Transfer(0)
	elapsed := time.Since(start)
	if elapsed < 1500*time.Microsecond {
		t.Fatalf("transfer returned after %v, want >= ~2ms", elapsed)
	}
}

func TestTimeScaleDividesDelay(t *testing.T) {
	n := New(Config{LatencyNs: 50_000_000, TimeScale: 1000}) // 50ms -> 50us
	start := time.Now()
	n.Transfer(0)
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("TimeScale not applied")
	}
}
