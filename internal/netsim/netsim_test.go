package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCostFormula(t *testing.T) {
	c := Config{LatencyNs: 1000, BytesPerNs: 10, PerMsgCPUNs: 200}
	if got := c.Cost(0); got != 1200 {
		t.Fatalf("Cost(0) = %d, want 1200", got)
	}
	if got := c.Cost(10000); got != 1200+1000 {
		t.Fatalf("Cost(10000) = %d, want 2200", got)
	}
}

func TestCostZeroBandwidthIsLatencyOnly(t *testing.T) {
	c := Config{LatencyNs: 500}
	if got := c.Cost(1 << 20); got != 500 {
		t.Fatalf("Cost = %d, want 500", got)
	}
}

func TestAriesRegime(t *testing.T) {
	a := Aries()
	// ~1.3us zero-byte, ~10 GB/s.
	if a.Cost(0) < 1000 || a.Cost(0) > 3000 {
		t.Fatalf("Aries zero-byte cost %d outside ~1.3us regime", a.Cost(0))
	}
	mb := a.Cost(1 << 20)
	if mb < 100_000 || mb > 200_000 {
		t.Fatalf("Aries 1MiB cost %d outside ~10GB/s regime", mb)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	l := Loopback()
	if l.Cost(1<<20) != 0 {
		t.Fatalf("loopback cost %d, want 0", l.Cost(1<<20))
	}
	start := time.Now()
	New(l).Transfer(1 << 20)
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("loopback transfer took real time")
	}
}

// Property: cost is monotone in message size.
func TestCostMonotoneProperty(t *testing.T) {
	c := Aries()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.Cost(x) <= c.Cost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTakesModeledTime(t *testing.T) {
	n := New(Config{LatencyNs: 2_000_000}) // 2ms, well above timer noise
	start := time.Now()
	n.Transfer(0)
	elapsed := time.Since(start)
	if elapsed < 1500*time.Microsecond {
		t.Fatalf("transfer returned after %v, want >= ~2ms", elapsed)
	}
}

func TestTimeScaleDividesDelay(t *testing.T) {
	n := New(Config{LatencyNs: 50_000_000, TimeScale: 1000}) // 50ms -> 50us
	start := time.Now()
	n.Transfer(0)
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("TimeScale not applied")
	}
}

func TestFaultsActive(t *testing.T) {
	if (Faults{}).Active() {
		t.Fatal("zero Faults reports active")
	}
	for _, f := range []Faults{
		{DropProb: 0.1}, {DupProb: 0.1}, {ReorderProb: 0.1}, {JitterNs: 10},
	} {
		if !f.Active() {
			t.Fatalf("%+v reports inactive", f)
		}
	}
	// Recovery knobs alone do not switch the reliable path on.
	if (Faults{RetryBudget: 3, RetryBackoffNs: 10}).Active() {
		t.Fatal("recovery-only Faults reports active")
	}
}

func TestInjectDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []Verdict {
		n := New(Config{Faults: Faults{Seed: seed, DropProb: 0.2, DupProb: 0.2, ReorderProb: 0.2, JitterNs: 100}})
		out := make([]Verdict, 200)
		for i := range out {
			out[i] = n.Inject()
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical verdict streams")
	}
}

func TestInjectRatesAndStats(t *testing.T) {
	f := Faults{Seed: 7, DropProb: 0.3, DupProb: 0.2, ReorderProb: 0.1, JitterNs: 1000}
	n := New(Config{Faults: f})
	const trials = 20000
	var drops, dups, reorders int
	for i := 0; i < trials; i++ {
		v := n.Inject()
		if v.Drop {
			drops++
			if v.Dup || v.Reorder {
				t.Fatal("a dropped message cannot also be duplicated or reordered")
			}
		}
		if v.Dup {
			dups++
		}
		if v.Reorder {
			reorders++
		}
		if v.ExtraNs < 0 || v.ExtraNs > f.JitterNs {
			t.Fatalf("jitter %d outside [0, %d]", v.ExtraNs, f.JitterNs)
		}
	}
	within := func(name string, got int, p float64) {
		t.Helper()
		want := p * trials
		if float64(got) < want*0.85 || float64(got) > want*1.15 {
			t.Fatalf("%s rate: got %d of %d, want about %.0f", name, got, trials, want)
		}
	}
	within("drop", drops, f.DropProb)
	// Dup and reorder are only judged for non-dropped messages.
	within("dup", dups, f.DupProb*(1-f.DropProb))
	within("reorder", reorders, f.ReorderProb*(1-f.DropProb))
	st := n.FaultStats()
	if st.Transmits != trials || st.Drops != int64(drops) || st.Dups != int64(dups) || st.Reorders != int64(reorders) {
		t.Fatalf("FaultStats %+v disagrees with observed counts (%d/%d/%d/%d)", st, trials, drops, dups, reorders)
	}
}

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	n := New(Config{Faults: Faults{DropProb: 0.1, RetryBackoffNs: 1000}})
	if got := n.RetryBackoff(1); got != 1000*time.Nanosecond {
		t.Fatalf("attempt 1 backoff = %v, want 1us", got)
	}
	if got := n.RetryBackoff(2); got != 2000*time.Nanosecond {
		t.Fatalf("attempt 2 backoff = %v, want 2us", got)
	}
	// Exponent caps at 64x so huge attempt counts cannot overflow.
	if got, want := n.RetryBackoff(50), 64*1000*time.Nanosecond; got != want {
		t.Fatalf("attempt 50 backoff = %v, want %v", got, want)
	}
	d := New(Config{Faults: Faults{DropProb: 0.1}})
	if got := d.RetryBackoff(1); got != DefaultRetryBackoffNs*time.Nanosecond {
		t.Fatalf("default backoff = %v, want %v", got, DefaultRetryBackoffNs*time.Nanosecond)
	}
	if got := d.RetryBudget(); got != DefaultRetryBudget {
		t.Fatalf("default budget = %d, want %d", got, DefaultRetryBudget)
	}
}

// TestRetryBackoffFloorsAtBase pins the low edge of the exponent: attempt 0
// (before any retransmit) and junk negative attempts return the base
// backoff instead of panicking on a negative shift.
func TestRetryBackoffFloorsAtBase(t *testing.T) {
	n := New(Config{Faults: Faults{DropProb: 0.1, RetryBackoffNs: 1000}})
	for _, attempt := range []int{0, -1, -50} {
		if got := n.RetryBackoff(attempt); got != 1000*time.Nanosecond {
			t.Fatalf("attempt %d backoff = %v, want the 1us base", attempt, got)
		}
	}
}

// TestRetryBudgetConfigured pins that a configured budget overrides the
// default exactly (the exhaustion test in internal/core counts attempts
// against this number, so an off-by-one here doubles as a protocol bug).
func TestRetryBudgetConfigured(t *testing.T) {
	for _, budget := range []int{1, 4, DefaultRetryBudget + 1} {
		n := New(Config{Faults: Faults{DropProb: 1.0, RetryBudget: budget}})
		if got := n.RetryBudget(); got != budget {
			t.Fatalf("RetryBudget() = %d, want configured %d", got, budget)
		}
	}
	// Zero and negative fall back to the default rather than disabling
	// retransmits entirely (a budget of 0 would hang every lossy run).
	for _, budget := range []int{0, -3} {
		n := New(Config{Faults: Faults{DropProb: 1.0, RetryBudget: budget}})
		if got := n.RetryBudget(); got != DefaultRetryBudget {
			t.Fatalf("RetryBudget() with %d configured = %d, want default %d", budget, got, DefaultRetryBudget)
		}
	}
}

func TestInjectInactiveIsFreeOfFaults(t *testing.T) {
	n := New(Config{})
	for i := 0; i < 100; i++ {
		if v := n.Inject(); v != (Verdict{}) {
			t.Fatalf("inactive network injected %+v", v)
		}
	}
	// The inactive path is deliberately counter-free (the runtime only
	// exports fault metrics when transmits were judged).
	if st := n.FaultStats(); st != (FaultStats{}) {
		t.Fatalf("inactive FaultStats = %+v, want zero", st)
	}
}
