// Package netsim stands in for the inter-node network.  The paper runs on
// Cori's Cray Aries dragonfly interconnect and delegates cross-node traffic
// to Cray MPICH; this reproduction runs every rank in one address space, so
// a cross-node message would otherwise be indistinguishable from a local
// one.  netsim restores the distinction by charging a modeled wire time
// (latency + size/bandwidth + per-message host CPU overhead) before a
// cross-node payload is delivered.
//
// The same cost model is shared with the discrete-event simulator
// (internal/cluster), which uses Cost directly instead of spinning.
package netsim

import (
	"runtime"
	"time"
)

// Config models one link class of the network.
type Config struct {
	// LatencyNs is the one-way zero-byte latency in nanoseconds.
	LatencyNs int64
	// BytesPerNs is the effective per-rank bandwidth (bytes per nanosecond;
	// 1.0 == 1 GB/s x 1e9/2^30 ≈ 0.93 GiB/s).
	BytesPerNs float64
	// PerMsgCPUNs is host-side software overhead per message (matching,
	// library dispatch) charged in addition to the wire time.
	PerMsgCPUNs int64
	// TimeScale divides every modeled delay, so tests can run the same model
	// quickly.  Zero or one means full scale.
	TimeScale int64
}

// Aries returns a cost model in the regime of the Cray Aries network used in
// the paper's evaluation: ~1.3 us one-way latency and ~10 GB/s effective
// per-rank bandwidth.
func Aries() Config {
	return Config{LatencyNs: 1300, BytesPerNs: 10.0, PerMsgCPUNs: 250}
}

// Loopback returns a near-zero-cost model for single-node configurations and
// fast tests.
func Loopback() Config {
	return Config{LatencyNs: 0, BytesPerNs: 0, PerMsgCPUNs: 0}
}

// Cost returns the modeled nanoseconds to move a message of the given size
// across the link (before TimeScale).
func (c Config) Cost(bytes int) int64 {
	t := c.LatencyNs + c.PerMsgCPUNs
	if c.BytesPerNs > 0 {
		t += int64(float64(bytes) / c.BytesPerNs)
	}
	return t
}

// Network injects wire delays for the real runtime.
type Network struct {
	cfg Config
}

// New builds a network with the given cost model.
func New(cfg Config) *Network { return &Network{cfg: cfg} }

// Config returns the cost model.
func (n *Network) Config() Config { return n.cfg }

// Transfer blocks the caller for the modeled time of moving bytes across the
// link.  Short delays busy-spin for fidelity; delays beyond ~5 us yield to
// the scheduler between probes so an oversubscribed host stays live.
func (n *Network) Transfer(bytes int) {
	d := n.cfg.Cost(bytes)
	if n.cfg.TimeScale > 1 {
		d /= n.cfg.TimeScale
	}
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(d))
	for time.Now().Before(deadline) {
		if d > 5000 {
			runtime.Gosched()
		}
	}
}
