// Package netsim stands in for the inter-node network.  The paper runs on
// Cori's Cray Aries dragonfly interconnect and delegates cross-node traffic
// to Cray MPICH; this reproduction runs every rank in one address space, so
// a cross-node message would otherwise be indistinguishable from a local
// one.  netsim restores the distinction by charging a modeled wire time
// (latency + size/bandwidth + per-message host CPU overhead) before a
// cross-node payload is delivered.
//
// The same cost model is shared with the discrete-event simulator
// (internal/cluster), which uses Cost directly instead of spinning.
package netsim

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Config models one link class of the network.
type Config struct {
	// LatencyNs is the one-way zero-byte latency in nanoseconds.
	LatencyNs int64
	// BytesPerNs is the effective per-rank bandwidth (bytes per nanosecond;
	// 1.0 == 1 GB/s x 1e9/2^30 ≈ 0.93 GiB/s).
	BytesPerNs float64
	// PerMsgCPUNs is host-side software overhead per message (matching,
	// library dispatch) charged in addition to the wire time.
	PerMsgCPUNs int64
	// TimeScale divides every modeled delay, so tests can run the same model
	// quickly.  Zero or one means full scale.
	TimeScale int64
	// Faults injects seeded message-level failures into the modeled wire.
	// The zero value disables injection and keeps the fast path unchanged.
	Faults Faults
}

// Faults configures deterministic, seeded fault injection on the modeled
// network, plus the recovery knobs of the ack/retransmit layer the runtime
// switches on whenever any fault is active.  Probabilities are per transmit
// attempt and independent.
type Faults struct {
	// Seed selects the pseudo-random decision stream (same seed, same
	// decision sequence).  Zero is a valid seed.
	Seed int64
	// DropProb is the probability a transmitted message is lost on the wire.
	DropProb float64
	// DupProb is the probability a transmitted message is delivered twice.
	DupProb float64
	// ReorderProb is the probability a message is held back at the receiving
	// NIC and processed after the next arrival on its channel (a pairwise
	// swap; the held message is released by any later arrival, including the
	// sender's own retransmit).
	ReorderProb float64
	// JitterNs adds a uniform extra wire delay in [0, JitterNs] per message.
	JitterNs int64
	// RetryBudget bounds transmit attempts per message before the runtime
	// declares the link dead and aborts the run (0 = DefaultRetryBudget).
	RetryBudget int
	// RetryBackoffNs is the initial ack timeout before the first retransmit;
	// it doubles per attempt up to 64x (0 = DefaultRetryBackoffNs).
	RetryBackoffNs int64
}

// Recovery defaults for the ack/retransmit layer.
const (
	DefaultRetryBudget    = 16
	DefaultRetryBackoffNs = 100_000 // 100 us initial, doubling per attempt
)

// Active reports whether any fault injection is configured (the runtime uses
// this to decide between the raw mailbox path and the reliable ack/retransmit
// path).
func (f Faults) Active() bool {
	return f.DropProb > 0 || f.DupProb > 0 || f.ReorderProb > 0 || f.JitterNs > 0
}

// Verdict is the fault decision for one transmit attempt.
type Verdict struct {
	Drop    bool
	Dup     bool
	Reorder bool
	ExtraNs int64 // jitter delay to add to the wire time
}

// FaultStats counts injected faults since the network was created.
type FaultStats struct {
	Transmits int64 // attempts judged (including retransmits)
	Drops     int64
	Dups      int64
	Reorders  int64
}

// Aries returns a cost model in the regime of the Cray Aries network used in
// the paper's evaluation: ~1.3 us one-way latency and ~10 GB/s effective
// per-rank bandwidth.
func Aries() Config {
	return Config{LatencyNs: 1300, BytesPerNs: 10.0, PerMsgCPUNs: 250}
}

// Loopback returns a near-zero-cost model for single-node configurations and
// fast tests.
func Loopback() Config {
	return Config{LatencyNs: 0, BytesPerNs: 0, PerMsgCPUNs: 0}
}

// Cost returns the modeled nanoseconds to move a message of the given size
// across the link (before TimeScale).
func (c Config) Cost(bytes int) int64 {
	t := c.LatencyNs + c.PerMsgCPUNs
	if c.BytesPerNs > 0 {
		t += int64(float64(bytes) / c.BytesPerNs)
	}
	return t
}

// Network injects wire delays (and, when configured, faults) for the real
// runtime.
type Network struct {
	cfg Config

	// rng is the splitmix64 state of the fault-decision stream.  Decisions
	// are drawn lock-free with an atomic add, so the sequence of verdicts is
	// a pure function of the seed; which message receives which verdict
	// depends on arrival interleaving, as on a real wire.
	rng atomic.Uint64

	transmits atomic.Int64
	drops     atomic.Int64
	dups      atomic.Int64
	reorders  atomic.Int64
}

// New builds a network with the given cost model.
func New(cfg Config) *Network {
	n := &Network{cfg: cfg}
	n.rng.Store(splitmix64(uint64(cfg.Faults.Seed) + 0x1905) ^ 0xD1B54A32D192ED03)
	return n
}

// Config returns the cost model.
func (n *Network) Config() Config { return n.cfg }

// FaultsActive reports whether this network injects faults (and therefore
// whether the runtime must run the reliable ack/retransmit path).
func (n *Network) FaultsActive() bool { return n.cfg.Faults.Active() }

// RetryBudget returns the configured transmit-attempt bound per message.
func (n *Network) RetryBudget() int {
	if b := n.cfg.Faults.RetryBudget; b > 0 {
		return b
	}
	return DefaultRetryBudget
}

// RetryBackoff returns the ack timeout to wait after transmit attempt
// `attempt` (1-based): the configured initial backoff doubled per attempt,
// capped at 64x.
func (n *Network) RetryBackoff(attempt int) time.Duration {
	base := n.cfg.Faults.RetryBackoffNs
	if base <= 0 {
		base = DefaultRetryBackoffNs
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0 // attempt 0 (or junk) floors at the base backoff; a negative shift would panic
	}
	if shift > 6 {
		shift = 6
	}
	return time.Duration(base << shift)
}

func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// next draws one 64-bit value from the seeded decision stream.
func (n *Network) next() uint64 {
	return splitmix64(n.rng.Add(0x9E3779B97F4A7C15))
}

// u01 maps a draw onto [0, 1).
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Inject rolls the fault dice for one transmit attempt and counts what it
// decided.  Callers apply the verdict: skip delivery on Drop, deliver twice
// on Dup, hold at the NIC on Reorder, add ExtraNs to the wire time.
func (n *Network) Inject() Verdict {
	f := n.cfg.Faults
	if !f.Active() {
		return Verdict{}
	}
	n.transmits.Add(1)
	var v Verdict
	if f.DropProb > 0 && u01(n.next()) < f.DropProb {
		v.Drop = true
		n.drops.Add(1)
		return v // a dropped message can be neither duplicated nor held
	}
	if f.DupProb > 0 && u01(n.next()) < f.DupProb {
		v.Dup = true
		n.dups.Add(1)
	}
	if f.ReorderProb > 0 && u01(n.next()) < f.ReorderProb {
		v.Reorder = true
		n.reorders.Add(1)
	}
	if f.JitterNs > 0 {
		v.ExtraNs = int64(n.next() % uint64(f.JitterNs+1))
	}
	return v
}

// FaultStats returns the injected-fault counters (the runtime folds them into
// the metrics registry at the end of a run).
func (n *Network) FaultStats() FaultStats {
	return FaultStats{
		Transmits: n.transmits.Load(),
		Drops:     n.drops.Load(),
		Dups:      n.dups.Load(),
		Reorders:  n.reorders.Load(),
	}
}

// Transfer blocks the caller for the modeled time of moving bytes across the
// link.  Short delays busy-spin for fidelity; delays beyond ~5 us yield to
// the scheduler between probes so an oversubscribed host stays live.
func (n *Network) Transfer(bytes int) { n.TransferExtra(bytes, 0) }

// TransferExtra is Transfer with extraNs of additional modeled delay (fault
// injection jitter); the extra delay is subject to TimeScale like the rest.
func (n *Network) TransferExtra(bytes int, extraNs int64) {
	d := n.cfg.Cost(bytes) + extraNs
	if n.cfg.TimeScale > 1 {
		d /= n.cfg.TimeScale
	}
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(d))
	for time.Now().Before(deadline) {
		if d > 5000 {
			runtime.Gosched()
		}
	}
}
