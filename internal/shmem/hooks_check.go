//go:build purecheck

package shmem

// schedHook is the installed scheduling hook (nil outside checker runs).
// It is written only while no hooked goroutines are running (the checker
// installs it before spawning its cooperative threads and clears it after
// they join), so the plain variable is race-free.
var schedHook func(string)

// schedpoint hands control to the deterministic checker at a named
// synchronization point.  See hooks_prod.go for the production no-op.
func schedpoint(label string) {
	if h := schedHook; h != nil {
		h(label)
	}
}

// SetSchedHook installs (or, with nil, removes) the checker's scheduling
// hook.  Only the internal/check model tests call this; it exists only under
// the purecheck build tag.
func SetSchedHook(h func(string)) { schedHook = h }
