package shmem

import (
	"encoding/binary"
	"fmt"
)

// The shmem operation codec.
//
// When an addressed operation targets a rank on another node, the core
// layer ships it as an Op nested inside an rma.Frame of kind FrameShmem:
// the rma header names the window (and thus the symmetric heap) plus
// origin and target ranks, and the Op carries everything shmem-specific —
// which operation, the heap offset, operands, and a reply-correlation id
// for the fetching kinds.  Keeping the codec here (rather than in
// internal/rma) keeps rma ignorant of shmem semantics; keeping it out of
// internal/core keeps it fuzzable with no runtime underneath
// (FuzzShmemFrame).

// Op kinds.  OpPut carries payload bytes; every other kind is
// header-only.  OpGet, OpFetchAdd and OpCAS expect a reply correlated by
// Req (for OpGet the reply carries Val bytes of heap; for the atomics it
// carries the prior cell value).
const (
	OpPut      = byte(iota + 1) // copy Data into [Off, Off+len(Data))
	OpGet                       // read Val bytes at Off, reply with them
	OpAdd                       // AtomicAdd(Off, Val), no reply
	OpFetchAdd                  // AtomicFetchAdd(Off, Val), reply old value
	OpCAS                       // AtomicCAS(Off, Cmp, Val), reply old value
	OpStore                     // AtomicStore(Off, Val), no reply
)

// opNames is indexed by Op kind.
var opNames = [...]string{"", "put", "get", "add", "fetch-add", "cas", "store"}

// OpName returns a kind's human-readable name ("?" for out-of-range).
func OpName(kind byte) string {
	if int(kind) >= len(opNames) || kind == 0 {
		return "?"
	}
	return opNames[kind]
}

// OpHeaderLen is the fixed size of an encoded Op before the payload:
// kind (1) + Off (8) + Val (8) + Cmp (8) + Req (8).
const OpHeaderLen = 1 + 8 + 8 + 8 + 8

// Op is one addressed shmem operation in wire form.  Field use by kind:
// Off is always the heap byte offset; Val is the delta (OpAdd/OpFetchAdd),
// the swap value (OpCAS), the stored value (OpStore), or the byte count
// (OpGet); Cmp is OpCAS's compare value; Req is the reply-correlation id
// for the fetching kinds (0 = no reply wanted); Data is OpPut's payload.
type Op struct {
	Kind byte
	Off  int64
	Val  int64
	Cmp  int64
	Req  uint64
	Data []byte
}

// WantsReply reports whether o's kind sends a value back to the origin.
func (o *Op) WantsReply() bool {
	return o.Kind == OpGet || o.Kind == OpFetchAdd || o.Kind == OpCAS
}

// Encode appends o's wire form to dst and returns the extended slice.
func (o *Op) Encode(dst []byte) []byte {
	dst = append(dst, o.Kind)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(o.Off))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(o.Val))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(o.Cmp))
	dst = binary.LittleEndian.AppendUint64(dst, o.Req)
	return append(dst, o.Data...)
}

// EncodedLen returns the exact size Encode will produce for o.
func (o *Op) EncodedLen() int { return OpHeaderLen + len(o.Data) }

// DecodeOp parses an Op from b.  Data aliases b (no copy) — callers that
// outlive b must copy.  Validation here is what the fuzzer leans on: a
// decoded Op is structurally sound (known kind, non-negative offset and
// count, payload only on OpPut), though heap bounds are the applier's to
// check since the heap size is not wire state.
func DecodeOp(b []byte) (Op, error) {
	if len(b) < OpHeaderLen {
		return Op{}, fmt.Errorf("shmem: op truncated: %d bytes < %d-byte header", len(b), OpHeaderLen)
	}
	o := Op{
		Kind: b[0],
		Off:  int64(binary.LittleEndian.Uint64(b[1:])),
		Val:  int64(binary.LittleEndian.Uint64(b[9:])),
		Cmp:  int64(binary.LittleEndian.Uint64(b[17:])),
		Req:  binary.LittleEndian.Uint64(b[25:]),
	}
	if o.Kind < OpPut || o.Kind > OpStore {
		return Op{}, fmt.Errorf("shmem: unknown op kind %d", o.Kind)
	}
	if o.Off < 0 {
		return Op{}, fmt.Errorf("shmem: op %s has negative offset %d", OpName(o.Kind), o.Off)
	}
	if rest := b[OpHeaderLen:]; len(rest) > 0 {
		if o.Kind != OpPut {
			return Op{}, fmt.Errorf("shmem: op %s carries %d payload bytes but only put has payload", OpName(o.Kind), len(rest))
		}
		o.Data = rest
	}
	if o.Kind == OpGet && o.Val < 0 {
		return Op{}, fmt.Errorf("shmem: get of negative length %d", o.Val)
	}
	return o, nil
}

// Apply executes o against the local symmetric region buf and returns the
// prior cell value for the fetching atomic kinds (old, true).  OpGet is
// the one kind Apply rejects: its reply carries heap bytes, not a cell
// value, so the dispatcher serves it by reading buf directly.  Every
// atomic kind goes through the same hardware atomics as the intra-node
// fast path, which is what makes remote and local updates compose.
func (o *Op) Apply(buf []byte) (int64, bool) {
	switch o.Kind {
	case OpPut:
		if o.Off+int64(len(o.Data)) > int64(len(buf)) {
			panic(fmt.Sprintf("shmem: remote put of %d bytes at %d overflows the %d-byte symmetric region", len(o.Data), o.Off, len(buf)))
		}
		schedpoint("shmem:op:put")
		copy(buf[o.Off:o.Off+int64(len(o.Data))], o.Data)
		return 0, false
	case OpAdd:
		AtomicAdd(buf, int(o.Off), o.Val)
		return 0, false
	case OpFetchAdd:
		return AtomicFetchAdd(buf, int(o.Off), o.Val), true
	case OpCAS:
		return AtomicCAS(buf, int(o.Off), o.Cmp, o.Val), true
	case OpStore:
		AtomicStore(buf, int(o.Off), o.Val)
		return 0, false
	default:
		panic(fmt.Sprintf("shmem: Apply on op kind %s", OpName(o.Kind)))
	}
}
