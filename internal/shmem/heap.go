package shmem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The symmetric heap.
//
// Every rank exposes an identically sized region (its window buffer), and
// allocation is symmetric: the k-th Malloc returns the same offset on every
// rank, so a single offset addresses the "same" object in every rank's
// region (POSH's symmetric-heap contract).  Determinism, not negotiation,
// is what makes that work: every member performs the same sequence of
// Malloc/Free calls in the same order (the usual collective-call-ordering
// obligation, exactly like WinCreate), each rank runs an identical
// deterministic allocator over that call history (LocalAlloc), and
// therefore every rank computes identical offsets with no communication —
// which is also what keeps offsets symmetric across OS processes, where no
// memory is shared at all.
//
// The shared Heap table is the consensus-and-validation layer on top: the
// k-th allocation's extent is CAS-published once into slot k, racing
// publishers converge on the winner's value, and a rank whose locally
// computed offset disagrees with the published one has violated the
// call-ordering contract and panics with a descriptive message instead of
// silently corrupting a peer's object.  The internal/check model tests
// drive this publish protocol directly.

// heapSlot is one CAS-published allocation record.
type heapSlot struct{ v atomic.Uint64 }

// Slot packing: off<<32 | size, with bit 63 marking a freed allocation.
// Size is always >= 8 (Malloc rounds up), so a published slot is never
// zero and the zero value means "not yet published".
const heapFreedBit = uint64(1) << 63

// MaxHeapBytes bounds a symmetric heap so an extent packs into one
// published word (31 bits of offset, 31 of size).
const MaxHeapBytes = int64(1)<<31 - 1

func packExtent(off, size int64) uint64 { return uint64(off)<<32 | uint64(size) }

func unpackExtent(v uint64) (off, size int64) {
	return int64(v << 1 >> 33), int64(v & 0xffffffff)
}

// Heap is the shared state of one symmetric heap: the published allocation
// table.  One Heap is shared by all member ranks in the process (and is
// reachable from the registry by the core layer's remote-frame dispatch);
// the per-rank allocator mirror lives in each rank's handle (LocalAlloc).
type Heap struct {
	size  int64
	slots []heapSlot
}

// DefaultMaxAllocs is the allocation-table capacity used when the caller
// does not size it explicitly.
const DefaultMaxAllocs = 1024

// NewHeap builds the shared state for a symmetric heap of size bytes with
// capacity for maxAllocs lifetime Malloc calls (0 = DefaultMaxAllocs).
func NewHeap(size int64, maxAllocs int) *Heap {
	if size <= 0 || size > MaxHeapBytes {
		panic(fmt.Sprintf("shmem: heap size %d out of range (0, %d]", size, MaxHeapBytes))
	}
	if maxAllocs <= 0 {
		maxAllocs = DefaultMaxAllocs
	}
	return &Heap{size: size, slots: make([]heapSlot, maxAllocs)}
}

// Size returns the symmetric region size in bytes.
func (h *Heap) Size() int64 { return h.size }

// MaxAllocs returns the allocation-table capacity.
func (h *Heap) MaxAllocs() int { return len(h.slots) }

// Publish records allocation seq (0-based Malloc call index) at the locally
// computed extent and returns the canonical offset: the first publisher's.
// Racing publishers converge — the CAS admits exactly one value per slot —
// and because every rank's allocator mirror is deterministic over the same
// call history, a disagreeing survivor means the application broke the
// symmetric call-ordering contract; that is reported as a panic naming both
// extents rather than left to corrupt a peer's object.
func (h *Heap) Publish(seq int, off, size int64) int64 {
	if seq < 0 || seq >= len(h.slots) {
		panic(fmt.Sprintf("shmem: allocation %d overflows the %d-entry symmetric alloc table", seq, len(h.slots)))
	}
	if off < 0 || size < CellBytes || off+size > h.size {
		panic(fmt.Sprintf("shmem: allocation %d (%d bytes at %d) overflows the %d-byte symmetric heap", seq, size, off, h.size))
	}
	packed := packExtent(off, size)
	schedpoint("shmem:heap:publish")
	if h.slots[seq].v.CompareAndSwap(0, packed) {
		return off
	}
	schedpoint("shmem:heap:adopt")
	won := h.slots[seq].v.Load() &^ heapFreedBit
	wOff, wSize := unpackExtent(won)
	if wOff != off || wSize != size {
		panic(fmt.Sprintf(
			"shmem: allocation %d published as %d bytes at offset %d by a peer but computed as %d bytes at %d here — ranks called Malloc/Free in different orders",
			seq, wSize, wOff, size, off))
	}
	return wOff
}

// PublishFree marks allocation seq freed in the shared table.  Racing
// frees converge (the bit is set at most once); freeing an unpublished or
// already freed slot means the call-ordering contract broke.
func (h *Heap) PublishFree(seq int) {
	if seq < 0 || seq >= len(h.slots) {
		panic(fmt.Sprintf("shmem: free of allocation %d overflows the %d-entry symmetric alloc table", seq, len(h.slots)))
	}
	for {
		schedpoint("shmem:heap:free")
		v := h.slots[seq].v.Load()
		if v == 0 {
			panic(fmt.Sprintf("shmem: free of never-published allocation %d", seq))
		}
		if v&heapFreedBit != 0 {
			// A peer already published this free; converged.
			return
		}
		if h.slots[seq].v.CompareAndSwap(v, v|heapFreedBit) {
			return
		}
	}
}

// Extent reports allocation seq's published extent and liveness
// (diagnostics and tests; ok is false for never-published slots).
func (h *Heap) Extent(seq int) (off, size int64, live, ok bool) {
	if seq < 0 || seq >= len(h.slots) {
		return 0, 0, false, false
	}
	v := h.slots[seq].v.Load()
	if v == 0 {
		return 0, 0, false, false
	}
	off, size = unpackExtent(v &^ heapFreedBit)
	return off, size, v&heapFreedBit == 0, true
}

// ---- The per-rank deterministic allocator mirror ----

// span is one region of the heap in LocalAlloc's bookkeeping.
type span struct {
	off, size int64
}

// LocalAlloc is one rank's deterministic allocator state: a bump pointer
// plus an offset-sorted, coalesced free list, with first-fit (lowest
// offset) placement.  Two LocalAllocs fed the same Alloc/Release sequence
// produce identical offsets — the property the symmetric heap rests on —
// so it is plain single-owner state with no synchronization.
type LocalAlloc struct {
	brk  int64
	free []span          // sorted by offset, coalesced, never adjacent to brk
	live map[int64]span  // off -> extent of live allocations
	seqs map[int64]int   // off -> allocation seq (for Release -> PublishFree)
}

// Align8 rounds n up to the cell size.
func Align8(n int64) int64 { return (n + CellBytes - 1) &^ (CellBytes - 1) }

// Alloc places the seq-th allocation of size bytes (already rounded by the
// caller's Malloc) and returns its offset, or -1 with a reason when the
// heap cannot fit it.  First-fit over the free list, else the bump pointer.
func (a *LocalAlloc) Alloc(seq int, size, heapSize int64) (int64, error) {
	if a.live == nil {
		a.live = make(map[int64]span)
		a.seqs = make(map[int64]int)
	}
	off := int64(-1)
	for i, f := range a.free {
		if f.size >= size {
			off = f.off
			if f.size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{off: f.off + size, size: f.size - size}
			}
			break
		}
	}
	if off < 0 {
		if a.brk+size > heapSize {
			return -1, fmt.Errorf("shmem: Malloc of %d bytes exceeds the %d-byte symmetric heap (%d allocated, fragmented free list)", size, heapSize, a.brk)
		}
		off = a.brk
		a.brk += size
	}
	a.live[off] = span{off: off, size: size}
	a.seqs[off] = seq
	return off, nil
}

// Release frees the allocation at off, returning its seq and size.  The
// freed span coalesces with free-list neighbors; a span ending at the bump
// pointer retracts it, so stack-disciplined Malloc/Free reuses the heap
// fully.
func (a *LocalAlloc) Release(off int64) (int, int64, error) {
	s, ok := a.live[off]
	if !ok {
		return 0, 0, fmt.Errorf("shmem: Free(%d) does not match a live allocation", off)
	}
	seq := a.seqs[off]
	delete(a.live, off)
	delete(a.seqs, off)
	// Insert sorted, then coalesce with both neighbors.
	i := 0
	for i < len(a.free) && a.free[i].off < s.off {
		i++
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
		i--
	}
	// Trailing reclaim: a free span ending at brk retracts it.
	if n := len(a.free); n > 0 && a.free[n-1].off+a.free[n-1].size == a.brk {
		a.brk = a.free[n-1].off
		a.free = a.free[:n-1]
	}
	return seq, s.size, nil
}

// LiveBytes reports the total bytes in live allocations (diagnostics).
func (a *LocalAlloc) LiveBytes() int64 {
	var n int64
	for _, s := range a.live {
		n += s.size
	}
	return n
}

// ---- Registry ----

// Key identifies a symmetric heap the way rma.Key identifies a window: the
// owning communicator and the communicator's shmem-creation sequence
// number (every member counts ShmemCreate calls identically).
type Key struct {
	Comm uint64
	Seq  uint64
}

// Registry maps Key -> *Heap, creating heaps on demand; all member ranks in
// a process (and the core layer's remote-frame dispatch) resolve the same
// Heap through it.  Like rma.Registry, concurrent creators race through
// LoadOrStore and must converge on one instance — the schedpoint seams make
// that race explorable by the model tests.
type Registry struct{ m sync.Map }

// GetOrCreate returns the heap for k, creating it if it does not exist yet.
func (g *Registry) GetOrCreate(k Key, size int64, maxAllocs int) *Heap {
	schedpoint("shmem:reg:lookup")
	if v, ok := g.m.Load(k); ok {
		return v.(*Heap)
	}
	schedpoint("shmem:reg:create")
	v, _ := g.m.LoadOrStore(k, NewHeap(size, maxAllocs))
	return v.(*Heap)
}

// Lookup returns the heap for k, or nil.
func (g *Registry) Lookup(k Key) *Heap {
	if v, ok := g.m.Load(k); ok {
		return v.(*Heap)
	}
	return nil
}

// Free removes the heap for k (sequence numbers are never reused, so a
// stale key cannot alias a new heap).
func (g *Registry) Free(k Key) { g.m.Delete(k) }
