package shmem

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestAlignedBytes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		b := AlignedBytes(n)
		if len(b) != n {
			t.Fatalf("AlignedBytes(%d) has len %d", n, len(b))
		}
		if n > 0 {
			// The cell resolver's own alignment check is the assertion.
			if n >= CellBytes {
				AtomicStore(b, 0, 42)
				if got := AtomicLoad(b, 0); got != 42 {
					t.Fatalf("cell 0 = %d, want 42", got)
				}
			}
		}
	}
}

func TestAtomicOps(t *testing.T) {
	b := AlignedBytes(64)
	AtomicStore(b, 8, 100)
	AtomicAdd(b, 8, 5)
	if got := AtomicLoad(b, 8); got != 105 {
		t.Fatalf("after add: %d, want 105", got)
	}
	if old := AtomicFetchAdd(b, 8, -5); old != 105 {
		t.Fatalf("fetch-add old = %d, want 105", old)
	}
	if old := AtomicCAS(b, 8, 100, 7); old != 100 {
		t.Fatalf("cas old = %d, want 100", old)
	}
	if old := AtomicCAS(b, 8, 100, 9); old != 7 {
		t.Fatalf("failed cas old = %d, want 7", old)
	}
	if got := AtomicLoad(b, 8); got != 7 {
		t.Fatalf("final = %d, want 7", got)
	}
}

func TestAtomicAddConcurrent(t *testing.T) {
	b := AlignedBytes(CellBytes)
	const gor, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				AtomicAdd(b, 0, 1)
			}
		}()
	}
	wg.Wait()
	if got := AtomicLoad(b, 0); got != gor*per {
		t.Fatalf("lost updates: %d, want %d", got, gor*per)
	}
}

func TestCellPanics(t *testing.T) {
	b := AlignedBytes(16)
	for name, f := range map[string]func(){
		"overflow":  func() { AtomicLoad(b, 16) },
		"negative":  func() { AtomicLoad(b, -8) },
		"unaligned": func() { AtomicLoad(b, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestLocalAllocDeterministic feeds two mirrors the same call history and
// requires identical placements — the property the symmetric heap rests on.
func TestLocalAllocDeterministic(t *testing.T) {
	const heap = 1 << 16
	run := func(a *LocalAlloc) []int64 {
		var offs []int64
		var seq int
		alloc := func(n int64) int64 {
			off, err := a.Alloc(seq, Align8(n), heap)
			if err != nil {
				t.Fatal(err)
			}
			seq++
			offs = append(offs, off)
			return off
		}
		o0 := alloc(100)
		o1 := alloc(8)
		alloc(256)
		if _, _, err := a.Release(o1); err != nil {
			t.Fatal(err)
		}
		alloc(8)  // reuses o1's hole (first fit)
		alloc(64) // no hole fits; bump
		if _, _, err := a.Release(o0); err != nil {
			t.Fatal(err)
		}
		alloc(48) // fits in o0's 104-byte hole
		return offs
	}
	var a, b LocalAlloc
	oa, ob := run(&a), run(&b)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("alloc %d: mirror A placed at %d, mirror B at %d", i, oa[i], ob[i])
		}
	}
	if oa[3] != oa[1] {
		t.Fatalf("freed hole not reused first-fit: got %d, want %d", oa[3], oa[1])
	}
}

func TestLocalAllocCoalesceAndReclaim(t *testing.T) {
	var a LocalAlloc
	const heap = 1 << 12
	var offs []int64
	for seq := 0; seq < 4; seq++ {
		off, err := a.Alloc(seq, 64, heap)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free middle two out of order: they must coalesce into one 128B hole.
	a.Release(offs[2])
	a.Release(offs[1])
	off, err := a.Alloc(4, 128, heap)
	if err != nil {
		t.Fatal(err)
	}
	if off != offs[1] {
		t.Fatalf("coalesced hole not reused: got %d, want %d", off, offs[1])
	}
	// Free everything: brk must retract to 0.
	a.Release(offs[0])
	a.Release(off)
	a.Release(offs[3])
	if a.brk != 0 {
		t.Fatalf("brk = %d after freeing all, want 0", a.brk)
	}
	if len(a.free) != 0 {
		t.Fatalf("free list %v not fully reclaimed", a.free)
	}
	if _, _, err := a.Release(12345); err == nil {
		t.Fatal("Release of bogus offset did not error")
	}
}

func TestHeapPublishConvergence(t *testing.T) {
	h := NewHeap(4096, 8)
	if got := h.Publish(0, 128, 64); got != 128 {
		t.Fatalf("first publish returned %d", got)
	}
	// A peer publishing the same extent converges on it.
	if got := h.Publish(0, 128, 64); got != 128 {
		t.Fatalf("second publish returned %d", got)
	}
	off, size, live, ok := h.Extent(0)
	if !ok || !live || off != 128 || size != 64 {
		t.Fatalf("Extent = (%d,%d,%v,%v)", off, size, live, ok)
	}
	h.PublishFree(0)
	h.PublishFree(0) // racing free converges
	if _, _, live, _ := h.Extent(0); live {
		t.Fatal("slot still live after PublishFree")
	}
	// A divergent peer (different extent for the same seq) must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("divergent publish did not panic")
			}
		}()
		h.Publish(0, 256, 64)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("free of unpublished slot did not panic")
			}
		}()
		h.PublishFree(5)
	}()
}

func TestHeapRegistry(t *testing.T) {
	var reg Registry
	k := Key{Comm: 1, Seq: 2}
	a := reg.GetOrCreate(k, 4096, 0)
	b := reg.GetOrCreate(k, 4096, 0)
	if a != b {
		t.Fatal("GetOrCreate returned distinct heaps for one key")
	}
	if reg.Lookup(k) != a {
		t.Fatal("Lookup missed the created heap")
	}
	if reg.Lookup(Key{Comm: 9}) != nil {
		t.Fatal("Lookup invented a heap")
	}
	reg.Free(k)
	if reg.Lookup(k) != nil {
		t.Fatal("Free did not remove the heap")
	}
}

// TestRingCapOnePanics: a single-slot ring is unsound under the stamp
// scheme (publish stamp t+1 collides with recycle stamp t+cap, letting a
// sender overwrite an unconsumed message), so InitRing must reject it.
func TestRingCapOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InitRing accepted a cap-1 ring")
		}
	}()
	r := Ring{Base: 0, Cap: 1, Slot: 8}
	InitRing(AlignedBytes(int(r.Bytes())), r)
}

func TestRingSendPoll(t *testing.T) {
	r := Ring{Base: 16, Cap: 4, Slot: 32}
	buf := AlignedBytes(int(r.Base + r.Bytes()))
	InitRing(buf, r)
	dst := make([]byte, r.Slot)

	var h int64
	// Fill the ring completely, drain it, twice round the generation wrap.
	for round := 0; round < 3; round++ {
		for i := 0; i < r.Cap; i++ {
			if !Send(buf, r, []byte(fmt.Sprintf("r%d-m%d", round, i))) {
				t.Fatalf("round %d: send %d failed on non-full ring", round, i)
			}
		}
		if Send(buf, r, []byte("overflow")) {
			t.Fatalf("round %d: send succeeded on full ring", round)
		}
		for i := 0; i < r.Cap; i++ {
			n, ok := Poll(buf, r, h, dst)
			if !ok {
				t.Fatalf("round %d: poll %d found nothing", round, i)
			}
			want := fmt.Sprintf("r%d-m%d", round, i)
			if string(dst[:n]) != want {
				t.Fatalf("round %d msg %d = %q, want %q", round, i, dst[:n], want)
			}
			h++
		}
		if _, ok := Poll(buf, r, h, dst); ok {
			t.Fatalf("round %d: poll on empty ring returned a message", round)
		}
	}
}

// TestRingConcurrentSenders hammers one ring from several goroutines and
// checks per-sender FIFO and zero loss — the race-detector complement to
// the deterministic model test in internal/check.
func TestRingConcurrentSenders(t *testing.T) {
	r := Ring{Base: 0, Cap: 8, Slot: 16}
	buf := AlignedBytes(int(r.Bytes()))
	InitRing(buf, r)
	const senders, per = 4, 500

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				msg := []byte(fmt.Sprintf("%d:%d", s, i))
				for !Send(buf, r, msg) {
					runtime.Gosched() // ring full: let the consumer drain
				}
			}
		}(s)
	}

	next := make([]int, senders)
	dst := make([]byte, r.Slot)
	var h int64
	for got := 0; got < senders*per; {
		n, ok := Poll(buf, r, h, dst)
		if !ok {
			runtime.Gosched()
			continue
		}
		h++
		got++
		var s, i int
		if _, err := fmt.Sscanf(string(dst[:n]), "%d:%d", &s, &i); err != nil {
			t.Fatalf("garbled message %q: %v", dst[:n], err)
		}
		if i != next[s] {
			t.Fatalf("sender %d out of order: got %d, want %d", s, i, next[s])
		}
		next[s]++
	}
	wg.Wait()
}

func TestOpApply(t *testing.T) {
	buf := AlignedBytes(64)
	put := Op{Kind: OpPut, Off: 8, Data: []byte("hello")}
	put.Apply(buf)
	if !bytes.Equal(buf[8:13], []byte("hello")) {
		t.Fatalf("put landed as %q", buf[8:13])
	}
	(&Op{Kind: OpStore, Off: 16, Val: 40}).Apply(buf)
	(&Op{Kind: OpAdd, Off: 16, Val: 2}).Apply(buf)
	if old, rep := (&Op{Kind: OpFetchAdd, Off: 16, Val: 1}).Apply(buf); !rep || old != 42 {
		t.Fatalf("fetch-add = (%d,%v), want (42,true)", old, rep)
	}
	if old, rep := (&Op{Kind: OpCAS, Off: 16, Cmp: 43, Val: 0}).Apply(buf); !rep || old != 43 {
		t.Fatalf("cas = (%d,%v), want (43,true)", old, rep)
	}
	if got := AtomicLoad(buf, 16); got != 0 {
		t.Fatalf("cell = %d after cas, want 0", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("overflowing put did not panic")
			}
		}()
		(&Op{Kind: OpPut, Off: 60, Data: []byte("too long")}).Apply(buf)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Apply(OpGet) did not panic")
			}
		}()
		(&Op{Kind: OpGet, Off: 0, Val: 8}).Apply(buf)
	}()
}
