package shmem

// The mailbox ring protocol.
//
// A mailbox is a bounded multi-producer/single-consumer ring living in the
// owner rank's symmetric region, so any rank can be a producer using only
// the addressed operations the PGAS layer already has: atomic ticket
// claims on the tail cell, payload writes into a claimed slot, and a
// release-store of the slot stamp to publish.  The consumer is the owner
// rank alone; its cursor is private state (no shared head cell), which is
// what keeps the consume path a single stamp store.
//
// The slot-stamp discipline is Vyukov's bounded-queue scheme.  Slot i
// starts with stamp i.  The sender holding ticket t (slot t%cap) may fill
// only when stamp == t, and publishes by storing t+1; the consumer at
// cursor h may read only when stamp == h+1, and recycles by storing h+cap,
// which is exactly the stamp the ticket-(h+cap) sender is waiting for.
// Stamps grow monotonically, so "full" is observable without a head cell:
// a sender that reads stamp < tail-candidate knows the consumer has not
// recycled that slot yet.
//
// Everything below is a *step* of that protocol, phrased over a byte
// region plus a Ring layout.  Local mailboxes run the steps directly on
// the shared window; the core layer runs the same steps against a remote
// region by mapping each one onto an addressed operation (claim -> remote
// CAS, publish -> remote store, ...), and the model tests in
// internal/check interleave the steps through the schedpoint seams.

// Ring describes a mailbox ring's layout inside a symmetric region: a
// tail cell followed by cap slots of [stamp cell | len cell | payload].
// It is pure geometry — all fields are offsets and sizes, so the same
// value describes the ring inside every rank's region.
type Ring struct {
	Base int64 // byte offset of the ring in the symmetric region
	Cap  int   // number of slots (>= 1)
	Slot int   // payload bytes per slot (8-byte multiple, >= 8)
}

// RingBytes returns the footprint of a ring with cap slots of slot payload
// bytes; Layout panics if slot is not a positive multiple of 8.
func RingBytes(cap, slot int) int64 {
	return CellBytes + int64(cap)*(2*CellBytes+int64(slot))
}

// Bytes returns r's total footprint.
func (r Ring) Bytes() int64 { return RingBytes(r.Cap, r.Slot) }

// TailOff returns the offset of the shared ticket counter.
func (r Ring) TailOff() int64 { return r.Base }

func (r Ring) slotBase(i int) int64 {
	return r.Base + CellBytes + int64(i)*(2*CellBytes+int64(r.Slot))
}

// StampOff returns the offset of slot i's stamp cell.
func (r Ring) StampOff(i int) int64 { return r.slotBase(i) }

// LenOff returns the offset of slot i's length cell.
func (r Ring) LenOff(i int) int64 { return r.slotBase(i) + CellBytes }

// PayloadOff returns the offset of slot i's payload.
func (r Ring) PayloadOff(i int) int64 { return r.slotBase(i) + 2*CellBytes }

// SlotOf maps a ticket (or consumer cursor) to its slot index.
func (r Ring) SlotOf(t int64) int { return int(t % int64(r.Cap)) }

// InitRing writes the initial protocol state — tail 0, stamp(i) = i — into
// the owner's region.  The owner runs this before the mailbox is announced
// (a barrier in the creating collective), so plain init order is fine.
//
// Cap must be at least 2: with a single slot, ticket t's publish stamp
// (t+1) is the same value as cursor t's recycle stamp (t+cap), so the
// ticket-(t+1) sender cannot tell a full, unconsumed slot from a recycled
// one and would overwrite the pending message (the internal/check
// exhaustive mailbox test finds the resulting deadlock immediately).
func InitRing(buf []byte, r Ring) {
	if r.Cap < 2 || r.Slot < CellBytes || r.Slot%CellBytes != 0 {
		panic("shmem: mailbox ring needs cap >= 2 and an 8-byte-multiple slot size")
	}
	AtomicStore(buf, int(r.TailOff()), 0)
	for i := 0; i < r.Cap; i++ {
		AtomicStore(buf, int(r.StampOff(i)), int64(i))
	}
}

// SendClaim attempts to claim the next ticket by advancing the tail cell.
// It returns (ticket, true) on success; (_, false) means the ring was full
// at the attempt (the slot the tail maps to has not been recycled).  The
// CAS-claim (rather than an unconditional fetch-add) is what lets a
// full-ring sender walk away without wedging the slot for every later
// ticket.
func SendClaim(buf []byte, r Ring) (int64, bool) {
	for {
		schedpoint("shmem:ring:claim-tail")
		t := AtomicLoad(buf, int(r.TailOff()))
		schedpoint("shmem:ring:claim-stamp")
		s := AtomicLoad(buf, int(r.StampOff(r.SlotOf(t))))
		if s == t {
			schedpoint("shmem:ring:claim-cas")
			if AtomicCAS(buf, int(r.TailOff()), t, t+1) == t {
				return t, true
			}
			continue // lost the ticket race; retry with the new tail
		}
		if s < t {
			return 0, false // slot not recycled yet: ring full
		}
		// s > t: tail is stale (another sender already advanced it); retry.
	}
}

// SendFill copies msg into ticket t's slot and records its length.  Only
// the ticket holder may call it (stamp == t at claim time guarantees the
// consumer is done with the slot), so the payload copy is plain memory.
func SendFill(buf []byte, r Ring, t int64, msg []byte) {
	if len(msg) > r.Slot {
		panic("shmem: mailbox message exceeds slot size")
	}
	i := r.SlotOf(t)
	schedpoint("shmem:ring:fill")
	copy(buf[r.PayloadOff(i):r.PayloadOff(i)+int64(r.Slot)], msg)
	AtomicStore(buf, int(r.LenOff(i)), int64(len(msg)))
}

// SendPublish releases ticket t's slot to the consumer by storing stamp
// t+1.  The release-store makes the fill visible to the consumer's
// acquire-load in PollStamp.
func SendPublish(buf []byte, r Ring, t int64) {
	schedpoint("shmem:ring:publish")
	AtomicStore(buf, int(r.StampOff(r.SlotOf(t))), t+1)
}

// PollStamp reports whether the message at consumer cursor h has been
// published (stamp == h+1).
func PollStamp(buf []byte, r Ring, h int64) bool {
	schedpoint("shmem:ring:poll")
	return AtomicLoad(buf, int(r.StampOff(r.SlotOf(h)))) == h+1
}

// Consume reads the message at cursor h into dst (which must hold Slot
// bytes), recycles the slot for the ticket-(h+cap) sender, and returns the
// message length.  Call only after PollStamp(h) reported true; the caller
// then advances its cursor to h+1.
func Consume(buf []byte, r Ring, h int64, dst []byte) int {
	i := r.SlotOf(h)
	n := AtomicLoad(buf, int(r.LenOff(i)))
	schedpoint("shmem:ring:consume")
	copy(dst[:n], buf[r.PayloadOff(i):r.PayloadOff(i)+n])
	schedpoint("shmem:ring:recycle")
	AtomicStore(buf, int(r.StampOff(i)), h+int64(r.Cap))
	return int(n)
}

// Send runs the full producer step sequence against a local region:
// claim, fill, publish.  False means the ring was full.  (The core layer's
// Mailbox.Send runs the same three steps, substituting addressed remote
// operations when the owner is on another node.)
func Send(buf []byte, r Ring, msg []byte) bool {
	t, ok := SendClaim(buf, r)
	if !ok {
		return false
	}
	SendFill(buf, r, t, msg)
	SendPublish(buf, r, t)
	return true
}

// Poll runs the full consumer step sequence at cursor h against a local
// region: check the stamp, consume, recycle.  It returns the message
// length and true, or (0, false) when no message is ready; on true the
// caller advances its cursor.
func Poll(buf []byte, r Ring, h int64, dst []byte) (int, bool) {
	if !PollStamp(buf, r, h) {
		return 0, false
	}
	return Consume(buf, r, h, dst), true
}
