package shmem

import (
	"bytes"
	"testing"
)

func roundTrip(t *testing.T, o Op) Op {
	t.Helper()
	wire := o.Encode(nil)
	if len(wire) != o.EncodedLen() {
		t.Fatalf("EncodedLen = %d but Encode produced %d bytes", o.EncodedLen(), len(wire))
	}
	got, err := DecodeOp(wire)
	if err != nil {
		t.Fatalf("DecodeOp(%x): %v", wire, err)
	}
	if got.Kind != o.Kind || got.Off != o.Off || got.Val != o.Val || got.Cmp != o.Cmp || got.Req != o.Req {
		t.Fatalf("round-trip header mismatch: in %+v, out %+v", o, got)
	}
	if !bytes.Equal(got.Data, o.Data) {
		t.Fatalf("round-trip payload mismatch: in %x, out %x", o.Data, got.Data)
	}
	return got
}

func TestOpRoundTripAllKinds(t *testing.T) {
	for _, o := range []Op{
		{Kind: OpPut, Off: 64, Data: []byte("payload")},
		{Kind: OpGet, Off: 8, Val: 128, Req: 7},
		{Kind: OpAdd, Off: 16, Val: -3},
		{Kind: OpFetchAdd, Off: 24, Val: 1, Req: 9},
		{Kind: OpCAS, Off: 32, Val: 5, Cmp: 4, Req: 11},
		{Kind: OpStore, Off: 40, Val: 1 << 40},
	} {
		got := roundTrip(t, o)
		if got.WantsReply() != (o.Kind == OpGet || o.Kind == OpFetchAdd || o.Kind == OpCAS) {
			t.Fatalf("%s: WantsReply = %v", OpName(o.Kind), got.WantsReply())
		}
	}
}

// TestOpRoundTripEdges covers the degenerate extremes the wire format must
// represent exactly: zero-length transfers and offsets at the very top of
// the largest legal symmetric heap.
func TestOpRoundTripEdges(t *testing.T) {
	maxOff := MaxHeapBytes - CellBytes
	for _, o := range []Op{
		{Kind: OpPut, Off: 0, Data: nil},                      // zero-length put
		{Kind: OpPut, Off: maxOff, Data: []byte{}},            // zero-length at max offset
		{Kind: OpGet, Off: 0, Val: 0, Req: 1},                 // zero-length get
		{Kind: OpGet, Off: maxOff, Val: CellBytes, Req: 2},    // last addressable cell
		{Kind: OpAdd, Off: maxOff, Val: 1},                    // atomic at max offset
		{Kind: OpCAS, Off: maxOff, Cmp: -1, Val: 1<<63 - 1},   // extreme operands
		{Kind: OpStore, Off: maxOff, Val: -1 << 63},           // extreme operands
		{Kind: OpFetchAdd, Off: maxOff, Val: 0, Req: 1<<64 - 1}, // max req id
	} {
		roundTrip(t, o)
	}

	// A zero-length put round-trips to nil Data (the decoder does not
	// materialize an empty slice), and applies as a no-op anywhere in range.
	o := Op{Kind: OpPut, Off: 8, Data: []byte{}}
	got := roundTrip(t, o)
	if got.Data != nil {
		t.Fatalf("zero-length put decoded with non-nil Data %v", got.Data)
	}
	buf := AlignedBytes(16)
	got.Apply(buf)
}

func TestDecodeOpRejects(t *testing.T) {
	for name, wire := range map[string][]byte{
		"empty":            {},
		"short":            bytes.Repeat([]byte{0}, OpHeaderLen-1),
		"zero kind":        make([]byte, OpHeaderLen),
		"unknown kind":     append([]byte{0xFF}, make([]byte, OpHeaderLen-1)...),
		"negative offset":  (&Op{Kind: OpAdd, Off: -8}).Encode(nil),
		"negative get len": (&Op{Kind: OpGet, Off: 0, Val: -1}).Encode(nil),
		"payload on add":   append((&Op{Kind: OpAdd, Off: 0}).Encode(nil), 'x'),
	} {
		if _, err := DecodeOp(wire); err == nil {
			t.Errorf("%s: DecodeOp accepted %x", name, wire)
		}
	}
}
