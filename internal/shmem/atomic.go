// Package shmem holds the runtime-free pieces of Pure's PGAS layer: the
// symmetric-heap allocator, the word-atomic cell operations that remote
// atomics resolve to, the mailbox ring protocol, and the wire codec for
// shmem operations that cross OS processes.
//
// Like internal/rma (the substrate this package builds on), everything here
// operates on shared memory within one address space and is deliberately
// transport-free: internal/core supplies the glue that ships operations
// between nodes as frames and applies them on the target's goroutine.  The
// division keeps the lock-free protocols model-checkable in isolation — the
// internal/check model tests drive these functions directly through the
// schedpoint seams, with no runtime underneath.
package shmem

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// CellBytes is the size of an atomically addressable symmetric-heap cell.
// Every atomic operation targets one 8-byte, 8-aligned cell, interpreted as
// a two's-complement int64.
const CellBytes = 8

// AlignedBytes returns an n-byte slice whose base address is 8-byte
// aligned, backed by a []uint64 so the alignment is guaranteed by
// construction rather than by allocator luck.  Symmetric-heap buffers must
// come from here (or be otherwise 8-aligned): the cell operations below
// require it, and checkCell verifies it per call.
func AlignedBytes(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("shmem: negative buffer size %d", n))
	}
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)[:n:n]
}

// cell resolves the atomic cell at byte offset off in buf, validating
// bounds and alignment.  The cast is the package's one unsafe trick: the
// buffer's base is 8-aligned (AlignedBytes) and off is a multiple of 8, so
// &buf[off] is a legal *int64 for sync/atomic.
func cell(buf []byte, off int, what string) *atomic.Int64 {
	if off < 0 || off+CellBytes > len(buf) {
		panic(fmt.Sprintf("shmem: %s at offset %d overflows the %d-byte symmetric region", what, off, len(buf)))
	}
	if off%CellBytes != 0 {
		panic(fmt.Sprintf("shmem: %s at offset %d is not %d-byte aligned", what, off, CellBytes))
	}
	if uintptr(unsafe.Pointer(&buf[off]))%CellBytes != 0 {
		panic(fmt.Sprintf("shmem: %s region base is not %d-byte aligned (use shmem.AlignedBytes)", what, CellBytes))
	}
	return (*atomic.Int64)(unsafe.Pointer(&buf[off]))
}

// AtomicAdd folds delta into the cell at off.  Adds from any rank on the
// node (and from the frame-apply path carrying remote adds) use the same
// hardware atomic, so concurrent updates are never lost — unlike
// rma.AccumulateLocal, whose spinlock only serializes accumulates against
// each other, this composes with every other cell operation.
func AtomicAdd(buf []byte, off int, delta int64) {
	schedpoint("shmem:atomic:add")
	cell(buf, off, "AtomicAdd").Add(delta)
}

// AtomicFetchAdd folds delta into the cell at off and returns the value the
// cell held immediately before — the primitive mailbox senders claim ring
// tickets with.
func AtomicFetchAdd(buf []byte, off int, delta int64) int64 {
	schedpoint("shmem:atomic:fetch-add")
	return cell(buf, off, "AtomicFetchAdd").Add(delta) - delta
}

// AtomicCAS performs a compare-and-swap on the cell at off, returning the
// value the cell held immediately before the attempt: the swap succeeded
// iff the return equals old (OpenSHMEM's shmem_atomic_compare_swap
// contract).
func AtomicCAS(buf []byte, off int, old, new int64) int64 {
	c := cell(buf, off, "AtomicCAS")
	for {
		schedpoint("shmem:atomic:cas-load")
		cur := c.Load()
		if cur != old {
			return cur
		}
		schedpoint("shmem:atomic:cas-swap")
		if c.CompareAndSwap(old, new) {
			return old
		}
		// The cell changed between the load and the swap; re-examine.  The
		// loop terminates the moment the cell differs from old, so it is
		// lock-free (some operation completed to change the cell).
	}
}

// AtomicLoad returns the cell at off.
func AtomicLoad(buf []byte, off int) int64 {
	schedpoint("shmem:atomic:load")
	return cell(buf, off, "AtomicLoad").Load()
}

// AtomicStore publishes v into the cell at off.  The store is a release
// operation in the Go memory model: plain writes the same goroutine made
// earlier (a mailbox payload fill) are visible to any goroutine that
// observes v with AtomicLoad.
func AtomicStore(buf []byte, off int, v int64) {
	schedpoint("shmem:atomic:store")
	cell(buf, off, "AtomicStore").Store(v)
}
