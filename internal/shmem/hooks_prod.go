//go:build !purecheck

package shmem

// schedpoint is the deterministic concurrency checker's scheduling seam: the
// lock-free protocols call it at every synchronization point.  In normal
// builds it is this empty function, which the compiler inlines away to
// nothing; under the `purecheck` build tag it dispatches to an installable
// hook that the internal/check harness uses to explore thread interleavings.
func schedpoint(label string) {}
