package shmem

import (
	"bytes"
	"testing"
)

// FuzzShmemFrame throws arbitrary bytes at the shmem op decoder.  Ops
// arrive nested inside rma frames off the modeled network (and, under
// fault injection, after link-layer corruption), so DecodeOp must never
// panic: it either rejects the input with an error or returns an op that
// re-encodes to exactly the bytes it was decoded from.
func FuzzShmemFrame(f *testing.F) {
	// Seed with one valid op of every kind, plus the wire-format extremes.
	seeds := []Op{
		{Kind: OpPut, Off: 64, Data: []byte("payload")},
		{Kind: OpPut, Off: 0},
		{Kind: OpGet, Off: 8, Val: 128, Req: 7},
		{Kind: OpGet, Off: MaxHeapBytes - CellBytes, Val: CellBytes, Req: 2},
		{Kind: OpAdd, Off: 16, Val: -3},
		{Kind: OpFetchAdd, Off: 24, Val: 1, Req: 1<<64 - 1},
		{Kind: OpCAS, Off: 32, Val: 1<<63 - 1, Cmp: -1, Req: 11},
		{Kind: OpStore, Off: 40, Val: -1 << 63},
	}
	for i := range seeds {
		f.Add(seeds[i].Encode(nil))
	}
	// Plus degenerate inputs the decoder must reject cleanly.
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, OpHeaderLen))
	f.Add(bytes.Repeat([]byte{0xFF}, OpHeaderLen+3))

	f.Fuzz(func(t *testing.T, b []byte) {
		o, err := DecodeOp(b)
		if err != nil {
			return
		}
		if o.Kind < OpPut || o.Kind > OpStore {
			t.Fatalf("decoder accepted out-of-range kind %d", o.Kind)
		}
		if o.Off < 0 {
			t.Fatalf("decoder accepted negative offset %d", o.Off)
		}
		if len(o.Data) > 0 && o.Kind != OpPut {
			t.Fatalf("decoder accepted payload on %s", OpName(o.Kind))
		}
		// Round-trip: re-encoding an accepted op must reproduce the input
		// exactly (Data aliases b, so lengths must agree too).
		if got := o.Encode(nil); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch:\n in:  %x\n out: %x", b, got)
		}
	})
}
