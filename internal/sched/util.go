package sched

import "runtime"

// gosched is indirected for clarity at call sites.
func gosched() { runtime.Gosched() }

// AlignedIdxRange converts a chunk range into an element index range over an
// array of n elements of elemSize bytes, aligning chunk boundaries to
// cacheline multiples so concurrently executing chunks never false-share
// (the paper's pure_aligned_idx_range helper).  totalChunks is the number of
// chunks the task was divided into.  The returned range is half-open
// [lo, hi); empty ranges return lo == hi.
func AlignedIdxRange(n int64, elemSize int, startChunk, endChunk, totalChunks int64) (lo, hi int64) {
	if totalChunks <= 0 || n <= 0 || startChunk >= totalChunks {
		return 0, 0
	}
	perLine := int64(64 / elemSize)
	if perLine < 1 {
		perLine = 1
	}
	lines := (n + perLine - 1) / perLine
	// Deal lines to chunks as evenly as possible, remainder to the first chunks.
	per := lines / totalChunks
	extra := lines % totalChunks
	lineAt := func(chunk int64) int64 {
		if chunk > totalChunks {
			chunk = totalChunks
		}
		return chunk*per + min(chunk, extra)
	}
	lo = lineAt(startChunk) * perLine
	hi = lineAt(endChunk) * perLine
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// UnalignedIdxRange is the plain even split without cacheline alignment
// (the paper also ships an unaligned variant).
func UnalignedIdxRange(n int64, startChunk, endChunk, totalChunks int64) (lo, hi int64) {
	if totalChunks <= 0 || n <= 0 || startChunk >= totalChunks {
		return 0, 0
	}
	if endChunk > totalChunks {
		endChunk = totalChunks
	}
	lo = startChunk * n / totalChunks
	hi = endChunk * n / totalChunks
	return lo, hi
}
