// Package sched implements the Pure Task Scheduler (paper §4.3).
//
// A Pure Task is a chunk of application code (a closure) that its owning
// rank executes synchronously, but whose chunks may be stolen by other ranks
// on the same node that are blocked in the SSW-Loop.  The runtime keeps an
// active_tasks array in (per-node) shared memory with one atomic task-pointer
// slot per rank; a non-nil entry means "open for stealing".  Two atomic
// integers drive each execution: currChunk allocates chunks with fetch-add
// and chunksDone counts completions.  The owner executes until every chunk
// is allocated, then waits for stragglers; thieves steal one allocation per
// SSW probe and return to their blocking condition (work-first policy).
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Body is the executable of a Pure Task.  The runtime calls it with a
// half-open chunk range [start, end) that it must execute exactly once;
// extra carries the per-execute argument (the paper's per_exe_args).
// Bodies must be thread-safe across disjoint chunk ranges.
type Body func(start, end int64, extra any)

// ChunkMode selects how many chunks one allocation grabs.
type ChunkMode int

const (
	// SingleChunk allocates one chunk at a time (the paper's default in all
	// reported experiments).
	SingleChunk ChunkMode = iota
	// GuidedSelfScheduling allocates remaining/(2*nslots) chunks at a time,
	// so early allocations are large and the tail is fine-grained
	// (Polychronopoulos & Kuck, as cited by the paper).
	GuidedSelfScheduling
)

// StealPolicy selects how thieves pick victims.
type StealPolicy int

const (
	// RandomSteal probes a uniformly random slot per attempt, as in Cilk
	// (the paper's evaluated configuration).
	RandomSteal StealPolicy = iota
	// NUMAAwareSteal prefers victims on the thief's own socket, falling back
	// to a global random probe every few attempts.
	NUMAAwareSteal
	// StickySteal returns to the most recently robbed task if it is still
	// active, else behaves like RandomSteal.
	StickySteal
)

// Config configures a node's scheduler.
type Config struct {
	// Slots is the number of rank slots on this node (ranks + helper threads).
	Slots int
	// ChunkMode selects the allocation granularity (default SingleChunk).
	ChunkMode ChunkMode
	// Policy selects the victim policy (default RandomSteal).
	Policy StealPolicy
	// SocketOf maps slot -> NUMA domain for NUMAAwareSteal; nil means one domain.
	SocketOf []int
	// OwnerSteals lets a rank that finished allocating its own task's chunks
	// steal from other tasks while waiting for stragglers.  The paper's
	// owner simply waits; this is an extension (off by default).
	OwnerSteals bool
}

// exec is the state of one task execution.  A fresh exec is allocated per
// Execute call so that a thief holding a stale pointer from a previous
// execution can only ever observe an exhausted chunk counter, never chunks
// of a different execution.
type exec struct {
	body    Body
	nchunks int64
	extra   any
	mode    ChunkMode
	nslots  int64

	_    [64]byte
	curr atomic.Int64 // next chunk to allocate
	_    [64]byte
	done atomic.Int64 // chunks completed by thieves (owner counts locally)
	_    [64]byte
}

// grab allocates the next chunk range.  ok is false when all chunks have
// been allocated.
func (e *exec) grab() (start, end int64, ok bool) {
	k := int64(1)
	if e.mode == GuidedSelfScheduling {
		remaining := e.nchunks - e.curr.Load()
		if remaining > 0 {
			k = remaining / (2 * e.nslots)
			if k < 1 {
				k = 1
			}
		}
	}
	schedpoint("sched:grab:alloc")
	start = e.curr.Add(k) - k
	if start >= e.nchunks {
		return 0, 0, false
	}
	end = start + k
	if end > e.nchunks {
		end = e.nchunks
	}
	return start, end, true
}

// Scheduler is one node's active_tasks array plus policy state.  All ranks
// (and helper threads) of the node share one Scheduler.
type Scheduler struct {
	cfg    Config
	active []atomic.Pointer[exec] // the paper's active_tasks array
	// sameSocket[s] lists the slots on slot s's socket (for NUMA-aware steals).
	sameSocket [][]int
	// ownerThieves are lazily created per-slot thieves for OwnerSteals waits
	// (each slot's owner goroutine is the only user of its entry).
	ownerThieves []*Thief
}

// New builds a scheduler for cfg.Slots co-resident ranks.
func New(cfg Config) *Scheduler {
	if cfg.Slots <= 0 {
		panic(fmt.Sprintf("sched: Slots must be positive, got %d", cfg.Slots))
	}
	if cfg.SocketOf != nil && len(cfg.SocketOf) != cfg.Slots {
		panic(fmt.Sprintf("sched: SocketOf has %d entries for %d slots", len(cfg.SocketOf), cfg.Slots))
	}
	s := &Scheduler{
		cfg:          cfg,
		active:       make([]atomic.Pointer[exec], cfg.Slots),
		ownerThieves: make([]*Thief, cfg.Slots),
	}
	if cfg.Policy == NUMAAwareSteal {
		socketOf := cfg.SocketOf
		if socketOf == nil {
			socketOf = make([]int, cfg.Slots)
		}
		bySocket := map[int][]int{}
		for slot, sk := range socketOf {
			bySocket[sk] = append(bySocket[sk], slot)
		}
		s.sameSocket = make([][]int, cfg.Slots)
		for slot, sk := range socketOf {
			s.sameSocket[slot] = bySocket[sk]
		}
	}
	return s
}

// Slots returns the number of rank slots.
func (s *Scheduler) Slots() int { return s.cfg.Slots }

// RunStats reports how an execution's chunks were distributed.
type RunStats struct {
	OwnerChunks  int64 // chunks the owning rank executed itself
	StolenChunks int64 // chunks executed by thieves
}

// Run executes a task to completion on behalf of the owning rank in slot.
// It opens the task for stealing, executes chunks work-first, and returns
// only when every chunk has been executed (possibly by thieves).  wait is
// the rank's SSW wait function, used for the straggler wait.
func (s *Scheduler) Run(slot int, nchunks int64, body Body, extra any, wait func(cond func() bool)) RunStats {
	if nchunks <= 0 {
		return RunStats{}
	}
	e := &exec{body: body, nchunks: nchunks, extra: extra, mode: s.cfg.ChunkMode, nslots: int64(s.cfg.Slots)}
	schedpoint("sched:run:open")
	s.active[slot].Store(e) // publish: open for stealing

	var localDone int64 // the paper's owner-local completion count (avoids a
	// fetch-add cache miss per owner chunk)
	for {
		start, end, ok := e.grab()
		if !ok {
			break
		}
		schedpoint("sched:run:exec-chunk")
		body(start, end, extra)
		localDone += end - start
	}
	// All chunks allocated; wait for thieves to finish executing theirs.
	// The paper's owner simply waits; with OwnerSteals the owner spends the
	// straggler wait stealing from *other* ranks' open tasks (an extension —
	// off by default to match the paper).
	if s.cfg.OwnerSteals {
		th := s.ownerThief(slot)
		for e.done.Load()+localDone != nchunks {
			if !th.TrySteal() {
				gosched()
			}
		}
	} else {
		wait(func() bool { return e.done.Load()+localDone == nchunks })
	}
	schedpoint("sched:run:close")
	s.active[slot].Store(nil) // close
	return RunStats{OwnerChunks: localDone, StolenChunks: nchunks - localDone}
}

// ownerThief returns a cached per-slot thief used for OwnerSteals waits.
func (s *Scheduler) ownerThief(slot int) *Thief {
	if s.ownerThieves[slot] == nil {
		s.ownerThieves[slot] = s.NewThief(slot)
	}
	return s.ownerThieves[slot]
}

// stealGrab attempts to allocate one chunk range from the exec in the victim
// slot without executing it (so the thief can time the execution separately).
func (s *Scheduler) stealGrab(victim int) (e *exec, start, end int64, ok bool) {
	schedpoint("sched:steal:load-victim")
	e = s.active[victim].Load()
	if e == nil {
		return nil, 0, 0, false
	}
	start, end, ok = e.grab()
	return e, start, end, ok
}

// runStolen executes a grabbed allocation on behalf of thief t, timing it
// only when an observer is attached.
func (t *Thief) runStolen(e *exec, start, end int64) {
	if t.Obs != nil {
		t0 := time.Now()
		e.body(start, end, e.extra)
		e.done.Add(end - start)
		t.Obs(time.Since(t0).Nanoseconds())
		return
	}
	schedpoint("sched:steal:exec-chunk")
	e.body(start, end, e.extra)
	schedpoint("sched:steal:count-done")
	e.done.Add(end - start)
}

// Thief is one rank's (or helper thread's) stealing agent.  It implements
// ssw.Stealer.  Each rank owns exactly one Thief; it is not safe for
// concurrent use.
type Thief struct {
	s    *Scheduler
	slot int
	rng  uint64
	// lastVictim / lastExec implement sticky stealing.
	lastVictim int
	lastExec   *exec
	// Stats
	Stolen   int64 // chunks this thief has executed
	Attempts int64 // TrySteal calls

	// Obs, when non-nil, is invoked after every successful steal with the
	// nanoseconds spent executing the stolen allocation.  The runtime's
	// observability layer sets it; the cost (two clock reads per successful
	// steal, none on failed probes) is paid only when tracing is enabled.
	Obs func(ns int64)
}

// NewThief creates the stealing agent for the rank in slot.
func (s *Scheduler) NewThief(slot int) *Thief {
	return &Thief{s: s, slot: slot, rng: uint64(slot)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D, lastVictim: -1}
}

// next returns a pseudo-random value (xorshift64*; no locks, no allocation —
// the steal probe must stay "a handful of assembly instructions").
func (t *Thief) next() uint64 {
	t.rng ^= t.rng >> 12
	t.rng ^= t.rng << 25
	t.rng ^= t.rng >> 27
	return t.rng * 0x2545F4914F6CDD1D
}

// TrySteal probes the active_tasks array once and executes at most one
// stolen allocation, per the paper's work-first discipline ("thieves do just
// one chunk of stolen work before checking on their blocking event again").
// It reports whether any work was executed.
func (t *Thief) TrySteal() bool {
	t.Attempts++
	s := t.s
	n := s.cfg.Slots
	if n <= 1 {
		return false
	}
	// Sticky: revisit the previous victim if its execution is still live.
	if s.cfg.Policy == StickySteal && t.lastExec != nil {
		if s.active[t.lastVictim].Load() == t.lastExec {
			if e, start, end, ok := s.stealGrab(t.lastVictim); ok {
				t.runStolen(e, start, end)
				t.Stolen++
				return true
			}
		}
		t.lastExec = nil
	}
	var victim int
	switch s.cfg.Policy {
	case NUMAAwareSteal:
		// Prefer same-socket victims; every 4th probe goes global so remote
		// tasks are not starved.
		local := s.sameSocket[t.slot]
		if len(local) > 1 && t.next()%4 != 0 {
			victim = local[int(t.next()%uint64(len(local)))]
		} else {
			victim = int(t.next() % uint64(n))
		}
	default:
		victim = int(t.next() % uint64(n))
	}
	if victim == t.slot {
		victim = (victim + 1) % n
	}
	e, start, end, ok := s.stealGrab(victim)
	if ok {
		t.runStolen(e, start, end)
		t.Stolen++
		if s.cfg.Policy == StickySteal {
			t.lastVictim, t.lastExec = victim, e
		}
		return true
	}
	return false
}

// Helpers runs n helper threads that do nothing but steal until stop is
// closed (the paper's "Pure helper threads... simply extra threads that
// continuously try to steal work", used when ranks don't cover all cores,
// e.g. DT class A).  Helper slots must have been included in Config.Slots.
// Returns a WaitGroup the caller can Wait on after closing stop.
func (s *Scheduler) Helpers(firstSlot, n int, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			th := s.NewThief(slot)
			spins := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if th.TrySteal() {
					spins = 0
					continue
				}
				spins++
				if spins >= 32 {
					spins = 0
					gosched()
				}
			}
		}(firstSlot + i)
	}
	return &wg
}
