package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/ssw"
)

func spinWait(cond func() bool) { ssw.SpinWait(cond) }

func TestRunExecutesEveryChunkExactlyOnce(t *testing.T) {
	s := New(Config{Slots: 4})
	const nchunks = 100
	var counts [nchunks]atomic.Int32
	stats := s.Run(0, nchunks, func(start, end int64, _ any) {
		for c := start; c < end; c++ {
			counts[c].Add(1)
		}
	}, nil, spinWait)
	for c := range counts {
		if got := counts[c].Load(); got != 1 {
			t.Fatalf("chunk %d executed %d times", c, got)
		}
	}
	if stats.OwnerChunks != nchunks || stats.StolenChunks != 0 {
		t.Fatalf("stats = %+v, want all owner-executed (no thieves active)", stats)
	}
}

func TestRunZeroChunks(t *testing.T) {
	s := New(Config{Slots: 2})
	stats := s.Run(0, 0, func(int64, int64, any) { t.Fatal("body called") }, nil, spinWait)
	if stats.OwnerChunks != 0 || stats.StolenChunks != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunPassesExtraArgs(t *testing.T) {
	s := New(Config{Slots: 2})
	type args struct{ v int }
	got := 0
	s.Run(0, 1, func(_, _ int64, extra any) { got = extra.(*args).v }, &args{v: 42}, spinWait)
	if got != 42 {
		t.Fatalf("extra = %d, want 42", got)
	}
}

func TestThievesStealAndAllChunksRun(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	s := New(Config{Slots: 4})
	const nchunks = 2000
	var counts [nchunks]atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Three thief ranks spin-stealing, as if blocked on a recv.
	for slot := 1; slot < 4; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			th := s.NewThief(slot)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !th.TrySteal() {
					runtime.Gosched()
				}
			}
		}(slot)
	}
	stats := s.Run(0, nchunks, func(start, end int64, _ any) {
		for c := start; c < end; c++ {
			counts[c].Add(1)
			runtime.Gosched() // widen the steal window
		}
	}, nil, spinWait)
	close(stop)
	wg.Wait()
	for c := range counts {
		if got := counts[c].Load(); got != 1 {
			t.Fatalf("chunk %d executed %d times", c, got)
		}
	}
	if stats.OwnerChunks+stats.StolenChunks != nchunks {
		t.Fatalf("stats don't cover all chunks: %+v", stats)
	}
	t.Logf("owner=%d stolen=%d", stats.OwnerChunks, stats.StolenChunks)
}

func TestGuidedSelfSchedulingCoversAllChunks(t *testing.T) {
	s := New(Config{Slots: 4, ChunkMode: GuidedSelfScheduling})
	const nchunks = 513
	var counts [nchunks]atomic.Int32
	s.Run(0, nchunks, func(start, end int64, _ any) {
		for c := start; c < end; c++ {
			counts[c].Add(1)
		}
	}, nil, spinWait)
	for c := range counts {
		if got := counts[c].Load(); got != 1 {
			t.Fatalf("chunk %d executed %d times", c, got)
		}
	}
}

// Property: for every (slots, chunkmode, nchunks), Run executes each chunk
// exactly once even with concurrent thieves.
func TestExactlyOnceProperty(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	f := func(slotsU, modeU uint8, nchunksU uint16) bool {
		slots := int(slotsU%6) + 2
		mode := SingleChunk
		if modeU%2 == 1 {
			mode = GuidedSelfScheduling
		}
		nchunks := int64(nchunksU%512) + 1
		s := New(Config{Slots: slots, ChunkMode: mode})
		counts := make([]atomic.Int32, nchunks)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for slot := 1; slot < slots; slot++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				th := s.NewThief(slot)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !th.TrySteal() {
						runtime.Gosched()
					}
				}
			}(slot)
		}
		s.Run(0, nchunks, func(start, end int64, _ any) {
			for c := start; c < end; c++ {
				counts[c].Add(1)
			}
		}, nil, spinWait)
		close(stop)
		wg.Wait()
		for c := range counts {
			if counts[c].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStealPoliciesCoverAllChunks(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	socketOf := []int{0, 0, 1, 1}
	for _, pol := range []StealPolicy{RandomSteal, NUMAAwareSteal, StickySteal} {
		s := New(Config{Slots: 4, Policy: pol, SocketOf: socketOf})
		const nchunks = 500
		counts := make([]atomic.Int32, nchunks)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for slot := 1; slot < 4; slot++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				th := s.NewThief(slot)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !th.TrySteal() {
						runtime.Gosched()
					}
				}
			}(slot)
		}
		s.Run(0, nchunks, func(start, end int64, _ any) {
			for c := start; c < end; c++ {
				counts[c].Add(1)
				runtime.Gosched()
			}
		}, nil, spinWait)
		close(stop)
		wg.Wait()
		for c := range counts {
			if counts[c].Load() != 1 {
				t.Fatalf("policy %d: chunk %d ran %d times", pol, c, counts[c].Load())
			}
		}
	}
}

func TestTrySteaWithNoActiveTasks(t *testing.T) {
	s := New(Config{Slots: 4})
	th := s.NewThief(1)
	for i := 0; i < 100; i++ {
		if th.TrySteal() {
			t.Fatal("stole from empty scheduler")
		}
	}
	if th.Attempts != 100 || th.Stolen != 0 {
		t.Fatalf("stats = %d/%d", th.Attempts, th.Stolen)
	}
}

func TestTryStealSingleSlot(t *testing.T) {
	s := New(Config{Slots: 1})
	th := s.NewThief(0)
	if th.TrySteal() {
		t.Fatal("single-slot scheduler cannot steal")
	}
}

func TestHelpersDrainTask(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	// 2 ranks + 2 helper slots.
	s := New(Config{Slots: 4})
	stop := make(chan struct{})
	wg := s.Helpers(2, 2, stop)
	const nchunks = 1000
	var counts [nchunks]atomic.Int32
	stats := s.Run(0, nchunks, func(start, end int64, _ any) {
		for c := start; c < end; c++ {
			counts[c].Add(1)
			runtime.Gosched()
		}
	}, nil, spinWait)
	close(stop)
	wg.Wait()
	for c := range counts {
		if counts[c].Load() != 1 {
			t.Fatalf("chunk %d ran %d times", c, counts[c].Load())
		}
	}
	if stats.OwnerChunks+stats.StolenChunks != nchunks {
		t.Fatalf("bad stats %+v", stats)
	}
}

func TestNewPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero slots", func() { New(Config{Slots: 0}) })
	mustPanic("socket mismatch", func() { New(Config{Slots: 2, SocketOf: []int{0}}) })
}

func TestAlignedIdxRangePartition(t *testing.T) {
	// 1000 float64s (8 B) -> 125 cachelines over 10 chunks.
	const n, chunks = 1000, 10
	prev := int64(0)
	for c := int64(0); c < chunks; c++ {
		lo, hi := AlignedIdxRange(n, 8, c, c+1, chunks)
		if lo != prev {
			t.Fatalf("chunk %d: lo=%d, want %d", c, lo, prev)
		}
		if lo%8 != 0 && lo != n {
			t.Fatalf("chunk %d: lo=%d not cacheline aligned", c, lo)
		}
		prev = hi
	}
	if prev != n {
		t.Fatalf("chunks cover %d elements, want %d", prev, n)
	}
}

// Property: AlignedIdxRange partitions [0, n) exactly for any shape, and
// every boundary except the last is cacheline-aligned.
func TestAlignedIdxRangeProperty(t *testing.T) {
	f := func(nU uint16, elemPow uint8, chunksU uint8) bool {
		n := int64(nU)
		elemSize := 1 << (elemPow % 4) // 1,2,4,8
		chunks := int64(chunksU%32) + 1
		perLine := int64(64 / elemSize)
		prev := int64(0)
		for c := int64(0); c < chunks; c++ {
			lo, hi := AlignedIdxRange(n, elemSize, c, c+1, chunks)
			if n == 0 {
				if lo != 0 || hi != 0 {
					return false
				}
				continue
			}
			if lo != prev || lo > hi {
				return false
			}
			if lo != n && lo%perLine != 0 {
				return false
			}
			prev = hi
		}
		return n == 0 || prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedIdxRangeMultiChunkGrab(t *testing.T) {
	// Grabbing chunks [2,5) must equal the union of [2,3)+[3,4)+[4,5).
	const n, chunks = 777, 7
	lo, hi := AlignedIdxRange(n, 8, 2, 5, chunks)
	lo2, _ := AlignedIdxRange(n, 8, 2, 3, chunks)
	_, hi2 := AlignedIdxRange(n, 8, 4, 5, chunks)
	if lo != lo2 || hi != hi2 {
		t.Fatalf("range grab mismatch: [%d,%d) vs [%d,%d)", lo, hi, lo2, hi2)
	}
}

func TestAlignedIdxRangeDegenerate(t *testing.T) {
	if lo, hi := AlignedIdxRange(10, 8, 5, 6, 3); lo != 0 || hi != 0 {
		t.Fatalf("startChunk beyond total: [%d,%d)", lo, hi)
	}
	if lo, hi := AlignedIdxRange(0, 8, 0, 1, 3); lo != 0 || hi != 0 {
		t.Fatalf("zero elements: [%d,%d)", lo, hi)
	}
	if lo, hi := AlignedIdxRange(10, 8, 0, 1, 0); lo != 0 || hi != 0 {
		t.Fatalf("zero chunks: [%d,%d)", lo, hi)
	}
	// Huge element size still yields at least 1 element per line.
	if lo, hi := AlignedIdxRange(4, 128, 0, 4, 4); lo != 0 || hi != 4 {
		t.Fatalf("big elems: [%d,%d)", lo, hi)
	}
}

func TestUnalignedIdxRange(t *testing.T) {
	prev := int64(0)
	for c := int64(0); c < 7; c++ {
		lo, hi := UnalignedIdxRange(100, c, c+1, 7)
		if lo != prev {
			t.Fatalf("chunk %d: lo=%d want %d", c, lo, prev)
		}
		prev = hi
	}
	if prev != 100 {
		t.Fatalf("covered %d, want 100", prev)
	}
	if lo, hi := UnalignedIdxRange(100, 9, 12, 7); lo != 0 || hi != 0 {
		t.Fatalf("degenerate: [%d,%d)", lo, hi)
	}
	if lo, hi := UnalignedIdxRange(100, 5, 12, 7); lo != 100*5/7 || hi != 100 {
		t.Fatalf("clamped: [%d,%d)", lo, hi)
	}
}

// Ablation: steal policies under a long imbalanced task.
func BenchmarkAblationStealPolicies(b *testing.B) {
	for _, cfg := range []struct {
		name string
		pol  StealPolicy
		mode ChunkMode
	}{
		{"single-random", RandomSteal, SingleChunk},
		{"guided-random", RandomSteal, GuidedSelfScheduling},
		{"single-numa", NUMAAwareSteal, SingleChunk},
		{"single-sticky", StickySteal, SingleChunk},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := New(Config{Slots: 4, Policy: cfg.pol, ChunkMode: cfg.mode, SocketOf: []int{0, 0, 1, 1}})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for slot := 1; slot < 4; slot++ {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					th := s.NewThief(slot)
					for {
						select {
						case <-stop:
							return
						default:
						}
						if !th.TrySteal() {
							runtime.Gosched()
						}
					}
				}(slot)
			}
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(0, 256, func(start, end int64, _ any) {
					x := int64(0)
					for c := start; c < end; c++ {
						for k := int64(0); k < 200; k++ {
							x += k * c
						}
					}
					sink.Add(x)
				}, nil, spinWait)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

func TestOwnerStealsFromOtherTasksWhileWaiting(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	// Slot 0's owner finishes allocating its own chunks, then — while its
	// thieves lag — steals from slot 1's concurrently open task.
	s := New(Config{Slots: 3, OwnerSteals: true})
	var otherRan atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Slot 2 is a slow thief keeping slot 0's task alive past allocation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := s.NewThief(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !th.TrySteal() {
				runtime.Gosched()
			} else {
				for i := 0; i < 3000; i++ {
					_ = i * i
				}
			}
		}
	}()
	// Slot 1 runs a long task concurrently (owner never finishes alone).
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(1, 400, func(start, end int64, _ any) {
			for c := start; c < end; c++ {
				otherRan.Add(1)
				runtime.Gosched()
			}
		}, nil, spinWait)
	}()
	s.Run(0, 50, func(start, end int64, _ any) {
		runtime.Gosched()
	}, nil, spinWait)
	close(stop)
	wg.Wait()
	if otherRan.Load() != 400 {
		t.Fatalf("slot 1 task ran %d chunks, want 400", otherRan.Load())
	}
}
