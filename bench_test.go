package repro

// One testing.B benchmark per table/figure of the paper's evaluation.  Each
// runs the corresponding experiment from internal/bench in quick mode (the
// full-scale sweeps are produced by cmd/purebench) and reports the
// headline series as benchmark metrics, so `go test -bench=.` regenerates
// every result's shape in seconds.

import (
	"testing"

	"repro/internal/bench"
)

// runExperiment executes the experiment once per benchmark iteration and
// logs the resulting table.
func runExperiment(b *testing.B, f func(bool) bench.Table) {
	b.Helper()
	var tb bench.Table
	for i := 0; i < b.N; i++ {
		tb = f(true)
	}
	b.StopTimer()
	if len(tb.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	if testing.Verbose() {
		b.Logf("table %s: %d rows", tb.ID, len(tb.Rows))
	}
}

func BenchmarkFig1Timeline(b *testing.B)        { runExperiment(b, bench.Fig1Timeline) }
func BenchmarkSec2Stencil(b *testing.B)         { runExperiment(b, bench.Sec2Stencil) }
func BenchmarkFig4DT(b *testing.B)              { runExperiment(b, bench.Fig4DT) }
func BenchmarkFig5aCoMD(b *testing.B)           { runExperiment(b, bench.Fig5aCoMD) }
func BenchmarkFig5bCoMDImbalanced(b *testing.B) { runExperiment(b, bench.Fig5bCoMDImbalanced) }
func BenchmarkFig5cCoMDDynamic(b *testing.B)    { runExperiment(b, bench.Fig5cCoMDDynamic) }
func BenchmarkFig5dMiniAMR(b *testing.B)        { runExperiment(b, bench.Fig5dMiniAMR) }
func BenchmarkFig6PingPong(b *testing.B)        { runExperiment(b, bench.Fig6PingPong) }
func BenchmarkFig6RealHost(b *testing.B)        { runExperiment(b, bench.RealHostPingPong) }
func BenchmarkFig7aAllreduce(b *testing.B)      { runExperiment(b, bench.Fig7aAllreduce) }
func BenchmarkFig7bBarrierNode(b *testing.B)    { runExperiment(b, bench.Fig7bBarrierNode) }
func BenchmarkFig7bRealHost(b *testing.B)       { runExperiment(b, bench.RealHostBarrier) }
func BenchmarkFig7cBarrierScale(b *testing.B)   { runExperiment(b, bench.Fig7cBarrierScale) }
func BenchmarkAppAExtraCollectives(b *testing.B) {
	runExperiment(b, bench.AppAExtraCollectives)
}
func BenchmarkAppCThreshold(b *testing.B)    { runExperiment(b, bench.AppCThreshold) }
func BenchmarkAblationPBQSlots(b *testing.B) { runExperiment(b, bench.AblationPBQSlots) }
