package mpibase

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

func run(t *testing.T, nranks int, main func(p *Proc)) {
	t.Helper()
	if err := Run(Config{NRanks: nranks}, main); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(Config{NRanks: 0}, func(*Proc) {}); err == nil {
		t.Fatal("want error for zero ranks")
	}
	err := Run(Config{NRanks: 2}, func(p *Proc) {
		if p.ID() == 0 {
			panic("kaboom")
		}
	})
	if err == nil {
		t.Fatal("want panic propagation")
	}
}

func TestSendRecvEager(t *testing.T) {
	run(t, 2, func(p *Proc) {
		c := p.World()
		if p.ID() == 0 {
			c.Send([]byte("mpi"), 1, 4)
		} else {
			buf := make([]byte, 8)
			n := c.Recv(buf, 0, 4)
			if string(buf[:n]) != "mpi" {
				t.Errorf("got %q", buf[:n])
			}
		}
	})
}

func TestSendRecvRendezvous(t *testing.T) {
	const size = 32 << 10
	run(t, 2, func(p *Proc) {
		c := p.World()
		if p.ID() == 0 {
			c.Send(bytes.Repeat([]byte{7}, size), 1, 0)
		} else {
			buf := make([]byte, size)
			n := c.Recv(buf, 0, 0)
			if n != size || buf[size-1] != 7 {
				t.Errorf("n=%d last=%d", n, buf[size-1])
			}
		}
	})
}

func TestRecvPostedBeforeSend(t *testing.T) {
	run(t, 2, func(p *Proc) {
		c := p.World()
		if p.ID() == 1 {
			buf := make([]byte, 8)
			req := c.Irecv(buf, 0, 0) // post first
			c.Send([]byte{9}, 0, 1)   // tell rank 0 we are ready
			c.Wait(req)
			if buf[0] != 77 {
				t.Errorf("got %d", buf[0])
			}
		} else {
			sig := make([]byte, 1)
			c.Recv(sig, 1, 1)
			c.Send([]byte{77}, 1, 0)
		}
	})
}

func TestNonOvertakingOrder(t *testing.T) {
	const n = 300
	run(t, 2, func(p *Proc) {
		c := p.World()
		if p.ID() == 0 {
			msg := make([]byte, 8)
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(msg, uint64(i))
				c.Send(msg, 1, 2)
			}
		} else {
			buf := make([]byte, 8)
			for i := 0; i < n; i++ {
				c.Recv(buf, 0, 2)
				if got := binary.LittleEndian.Uint64(buf); got != uint64(i) {
					t.Fatalf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	run(t, 2, func(p *Proc) {
		c := p.World()
		if p.ID() == 0 {
			var reqs []*Request
			for i := 0; i < 5; i++ {
				reqs = append(reqs, c.Isend([]byte{byte(10 + i)}, 1, i))
			}
			c.Waitall(reqs...)
		} else {
			bufs := make([][]byte, 5)
			var reqs []*Request
			for i := 4; i >= 0; i-- {
				bufs[i] = make([]byte, 1)
				reqs = append(reqs, c.Irecv(bufs[i], 0, i))
			}
			c.Waitall(reqs...)
			for i := 0; i < 5; i++ {
				if bufs[i][0] != byte(10+i) {
					t.Errorf("tag %d: got %d", i, bufs[i][0])
				}
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	const n = 7
	var counter atomic.Int64
	run(t, n, func(p *Proc) {
		c := p.World()
		for round := 1; round <= 8; round++ {
			counter.Add(1)
			c.Barrier()
			if got := counter.Load(); got != int64(round*n) {
				t.Errorf("round %d: counter %d, want %d", round, got, round*n)
			}
			c.Barrier()
		}
	})
}

func TestBcastAllRoots(t *testing.T) {
	const n = 5
	run(t, n, func(p *Proc) {
		c := p.World()
		for root := 0; root < n; root++ {
			buf := make([]byte, 16)
			if p.ID() == root {
				for i := range buf {
					buf[i] = byte(root + 1)
				}
			}
			c.Bcast(buf, root)
			if buf[0] != byte(root+1) || buf[15] != byte(root+1) {
				t.Errorf("root %d rank %d: bad payload", root, p.ID())
			}
			c.Barrier()
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 6
	run(t, n, func(p *Proc) {
		c := p.World()
		for root := 0; root < n; root += 2 {
			out := make([]byte, 8)
			in := codec.Float64Bytes([]float64{float64(p.ID() + 1)})
			c.Reduce(in, out, root, Sum, Float64)
			if p.ID() == root {
				got := make([]float64, 1)
				codec.GetFloat64s(got, out)
				if got[0] != 21 {
					t.Errorf("root %d: reduce = %v", root, got[0])
				}
			}
			c.Barrier()
		}
		if got := c.AllreduceFloat64(float64(p.ID()), Max); got != n-1 {
			t.Errorf("allreduce max = %v", got)
		}
		if got := c.AllreduceInt64(2, Prod); got != 64 {
			t.Errorf("allreduce prod = %d", got)
		}
	})
}

func TestAllreduceVector(t *testing.T) {
	run(t, 4, func(p *Proc) {
		c := p.World()
		in := []float64{1, float64(p.ID())}
		out := make([]float64, 2)
		c.AllreduceFloat64s(in, out, Sum)
		if out[0] != 4 || out[1] != 6 {
			t.Errorf("got %v", out)
		}
	})
}

func TestCommSplit(t *testing.T) {
	const n = 8
	run(t, n, func(p *Proc) {
		c := p.World()
		sub := c.Split(p.ID()%2, p.ID())
		if sub.Size() != 4 || sub.Rank() != p.ID()/2 {
			t.Errorf("rank %d: sub %d/%d", p.ID(), sub.Rank(), sub.Size())
		}
		want := 12.0
		if p.ID()%2 == 1 {
			want = 16.0
		}
		if got := sub.AllreduceFloat64(float64(p.ID()), Sum); got != want {
			t.Errorf("rank %d: sub allreduce %v, want %v", p.ID(), got, want)
		}
		if none := c.Split(-1, 0); none != nil {
			t.Error("negative color should return nil")
		}
	})
}

func TestCrossNodePlacementCost(t *testing.T) {
	err := Run(Config{
		NRanks:       4,
		Spec:         topology.CoriSpec(2),
		RanksPerNode: 2,
		Net:          netsim.Config{LatencyNs: 100, BytesPerNs: 1, TimeScale: 10},
	}, func(p *Proc) {
		c := p.World()
		if p.ID() == 0 {
			c.Send([]byte("x-node"), 3, 0) // rank 3 is on node 1
		} else if p.ID() == 3 {
			buf := make([]byte, 8)
			n := c.Recv(buf, 0, 0)
			if string(buf[:n]) != "x-node" {
				t.Errorf("got %q", buf[:n])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedSendRecv(t *testing.T) {
	run(t, 2, func(p *Proc) {
		c := p.World()
		if p.ID() == 0 {
			c.SendFloat64s([]float64{3.14, 2.71}, 1, 0)
		} else {
			got := make([]float64, 2)
			c.RecvFloat64s(got, 0, 0)
			if got[0] != 3.14 || got[1] != 2.71 {
				t.Errorf("got %v", got)
			}
		}
		vals := []float64{0}
		if p.ID() == 0 {
			vals[0] = 42
		}
		c.BcastFloat64s(vals, 0)
		if vals[0] != 42 {
			t.Errorf("bcast got %v", vals[0])
		}
	})
}

func TestTagAndPeerValidation(t *testing.T) {
	run(t, 2, func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		c := p.World()
		mustPanic := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}
		mustPanic("reserved tag", func() { c.Send([]byte{1}, 1, collTagBase) })
		mustPanic("bad peer", func() { c.Send([]byte{1}, 5, 0) })
		mustPanic("self-send", func() { c.Send([]byte{1}, 0, 0) })
		mustPanic("nil reduce out at root", func() { c.Reduce([]byte{1}, nil, 0, Sum, Uint8) })
	})
}

func TestRendezvousSenderBlocksUntilCopied(t *testing.T) {
	const size = 64 << 10
	var sendReturned atomic.Bool
	run(t, 2, func(p *Proc) {
		c := p.World()
		if p.ID() == 0 {
			buf := bytes.Repeat([]byte{1}, size)
			c.Send(buf, 1, 0)
			sendReturned.Store(true)
			// Buffer may be reused now.
			for i := range buf {
				buf[i] = 0
			}
		} else {
			// Delay posting the receive; the send must not complete early.
			for i := 0; i < 1000; i++ {
				if sendReturned.Load() {
					t.Error("rendezvous send returned before receive was posted")
					break
				}
				runtime.Gosched()
			}
			dst := make([]byte, size)
			c.Recv(dst, 0, 0)
			if dst[size-1] != 1 {
				t.Error("payload corrupted")
			}
		}
	})
}

func TestGatherAllgatherScatter(t *testing.T) {
	const n = 4
	run(t, n, func(p *Proc) {
		c := p.World()
		// Gather to rank 1.
		in := []byte{byte(p.ID())}
		var out []byte
		if p.ID() == 1 {
			out = make([]byte, n)
		}
		c.Gather(in, out, 1)
		if p.ID() == 1 && !bytes.Equal(out, []byte{0, 1, 2, 3}) {
			t.Errorf("gather = % x", out)
		}
		c.Barrier()
		// Allgather.
		all := make([]byte, n)
		c.Allgather(in, all)
		if !bytes.Equal(all, []byte{0, 1, 2, 3}) {
			t.Errorf("allgather = % x", all)
		}
		// Scatter from rank 3.
		var sin []byte
		if p.ID() == 3 {
			sin = []byte{30, 31, 32, 33}
		}
		sout := make([]byte, 1)
		c.Scatter(sin, sout, 3)
		if sout[0] != byte(30+p.ID()) {
			t.Errorf("scatter = %d", sout[0])
		}
	})
}

func TestSendrecvRing(t *testing.T) {
	const n = 5
	run(t, n, func(p *Proc) {
		c := p.World()
		next := (p.ID() + 1) % n
		prev := (p.ID() + n - 1) % n
		out := []byte{byte(p.ID())}
		in := make([]byte, 1)
		for i := 0; i < 30; i++ {
			if got := c.Sendrecv(out, next, 3, in, prev, 3); got != 1 || in[0] != byte(prev) {
				t.Errorf("iter %d: got %d/%d", i, got, in[0])
				return
			}
		}
	})
}

func TestMultiNodeCollectives(t *testing.T) {
	err := Run(Config{
		NRanks:       8,
		Spec:         topology.CoriSpec(2),
		RanksPerNode: 4,
		Net:          netsim.Config{LatencyNs: 50, BytesPerNs: 10, TimeScale: 10},
	}, func(p *Proc) {
		c := p.World()
		if got := c.AllreduceFloat64(float64(p.ID()), Sum); got != 28 {
			t.Errorf("allreduce = %v, want 28", got)
		}
		c.Barrier()
		buf := make([]byte, 4)
		if p.ID() == 5 { // root on node 1
			buf = []byte{1, 2, 3, 4}
		}
		c.Bcast(buf, 5)
		if buf[3] != 4 {
			t.Errorf("bcast payload wrong: % x", buf)
		}
		sub := c.Split(p.Node(), p.ID()) // per-node communicators
		want := 6.0                      // 0+1+2+3
		if p.Node() == 1 {
			want = 22.0 // 4+5+6+7
		}
		if got := sub.AllreduceFloat64(float64(p.ID()), Sum); got != want {
			t.Errorf("node comm allreduce = %v, want %v", got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
