// Package mpibase is the MPI-style baseline runtime this reproduction
// compares Pure against (the paper's baseline is Cray MPICH 7.7.19 with
// XPMEM and DMAPP on Cori).
//
// mpibase implements the process-per-rank model faithfully in-process:
// ranks never share application data structures; every message crosses the
// "library boundary" through a per-receiver matching engine guarded by a
// mutex, exactly the kind of serialization a process-based MPI pays inside
// a node.  Two protocols are implemented:
//
//   - eager (default <= 8 KiB): the payload is copied into a library buffer
//     and again into the receive buffer (two copies), sender returns as soon
//     as the payload is buffered (MPI buffered semantics);
//   - rendezvous: the sender publishes a ready-to-send record and blocks
//     until the receiver's matching receive copies the payload directly out
//     of the sender's buffer (single copy — the XPMEM-style cross-process
//     mapping Cray MPICH uses).
//
// Collectives are the classic tree algorithms (binomial broadcast/reduce,
// dissemination barrier, reduce+broadcast allreduce) built on the
// point-to-point layer — i.e., no intra-node shared-memory fast path, which
// is precisely the gap Pure's SPTD/Partitioned-Reducer collectives exploit.
//
// Matching follows the MPI non-overtaking rule per (source, tag,
// communicator); wildcards are not supported (the apps in this repository
// do not use them).
package mpibase

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/collective"
	"repro/internal/netsim"
	"repro/internal/ssw"
	"repro/internal/topology"
)

// DefaultEagerMax is the eager/rendezvous threshold (Cray MPICH's default
// intra-node threshold regime).
const DefaultEagerMax = 8 << 10

// collTagBase reserves the upper tag space for collective trees.
const collTagBase = 1 << 29

// Op and DType are re-exported so applications need only this package.
type Op = collective.Op

// Reduction operators.
const (
	Sum  = collective.OpSum
	Prod = collective.OpProd
	Min  = collective.OpMin
	Max  = collective.OpMax
)

// DType is an element type.
type DType = collective.DType

// Element types.
const (
	Float64 = collective.Float64
	Float32 = collective.Float32
	Int64   = collective.Int64
	Int32   = collective.Int32
	Uint8   = collective.Uint8
)

// Config configures a run.
type Config struct {
	// NRanks is the number of MPI processes.
	NRanks int
	// Spec / RanksPerNode / Policy place ranks on the virtual cluster
	// (cross-node messages pay the Net cost model).
	Spec         topology.Spec
	RanksPerNode int
	Policy       topology.Policy
	// EagerMax is the protocol threshold in bytes (default 8 KiB).
	EagerMax int
	// Net is the inter-node cost model.
	Net netsim.Config
	// SpinBudget tunes the progress-wait loops.
	SpinBudget int
}

// Runtime is one mpibase program instance.
type Runtime struct {
	cfg   Config
	place *topology.Placement
	net   *netsim.Network
	boxes []*mailbox
	comms sync.Map // splitKey -> *commShared
	ids   atomic.Uint64
	world *commShared
}

// Proc is one rank's handle (an "MPI process").
type Proc struct {
	id    int
	rt    *Runtime
	wait  ssw.Waiter
	world *Comm
}

// Run launches an mpibase program: main runs once per rank.
func Run(cfg Config, main func(p *Proc)) error {
	if cfg.NRanks <= 0 {
		return fmt.Errorf("mpibase: NRanks must be positive, got %d", cfg.NRanks)
	}
	if cfg.Spec == (topology.Spec{}) {
		cfg.Spec = topology.Spec{Nodes: 1, SocketsPerNode: 1, CoresPerSocket: cfg.NRanks, ThreadsPerCore: 1}
	}
	if cfg.EagerMax <= 0 {
		cfg.EagerMax = DefaultEagerMax
	}
	place, err := topology.NewPlacement(cfg.Spec, cfg.NRanks, cfg.RanksPerNode, cfg.Policy, nil)
	if err != nil {
		return fmt.Errorf("mpibase: placing ranks: %w", err)
	}
	// Adaptive progress-spin budget, mirroring the Pure runtime's policy:
	// spinning helps only when every rank has its own core.
	if cfg.SpinBudget == 0 && runtime.GOMAXPROCS(0) < cfg.NRanks {
		cfg.SpinBudget = 2
	}
	rt := &Runtime{cfg: cfg, place: place, net: netsim.New(cfg.Net)}
	rt.boxes = make([]*mailbox, cfg.NRanks)
	for i := range rt.boxes {
		rt.boxes[i] = &mailbox{}
	}
	members := make([]int, cfg.NRanks)
	for i := range members {
		members[i] = i
	}
	rt.world = rt.newCommShared(members)

	var wg sync.WaitGroup
	panics := make(chan any, cfg.NRanks)
	for id := 0; id < cfg.NRanks; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", id, p)
				}
			}()
			p := &Proc{id: id, rt: rt, wait: ssw.Waiter{SpinBudget: cfg.SpinBudget}}
			p.world = &Comm{p: p, sh: rt.world, myRank: id}
			main(p)
		}(id)
	}
	wg.Wait()
	close(panics)
	if p, ok := <-panics; ok {
		return fmt.Errorf("mpibase: rank panicked: %v", p)
	}
	return nil
}

// ID returns the process's world rank.
func (p *Proc) ID() int { return p.id }

// NRanks returns the world size.
func (p *Proc) NRanks() int { return p.rt.cfg.NRanks }

// Node returns the virtual node hosting this rank.
func (p *Proc) Node() int { return p.rt.place.NodeOf(p.id) }

// World returns the world communicator.
func (p *Proc) World() *Comm { return p.world }

// ---- The matching engine ----

// inMsg is a message that arrived before its receive was posted.
type inMsg struct {
	src, tag int
	comm     uint64
	data     []byte     // eager payload copy (nil for rendezvous)
	rts      *rtsRecord // rendezvous ready-to-send (nil for eager)
}

// rtsRecord lets the receiver copy straight out of the sender's buffer and
// release the sender (the single-copy rendezvous).
type rtsRecord struct {
	payload []byte
	copied  atomic.Bool
	n       int
}

// postedRecv is a receive waiting for its message.
type postedRecv struct {
	src, tag int
	comm     uint64
	buf      []byte
	n        int
	done     atomic.Bool
}

// mailbox is one rank's matching state.  The mutex is the library lock every
// message must take — the cost Pure's lock-free channels avoid.
type mailbox struct {
	mu         sync.Mutex
	unexpected []*inMsg
	posted     []*postedRecv
}

// Request is an in-flight nonblocking operation.
type Request struct {
	recv *postedRecv // non-nil for receives
	rts  *rtsRecord  // non-nil for rendezvous sends
	n    int
	done bool
}

// Done reports completion without blocking.
func (r *Request) Done() bool {
	if r.done {
		return true
	}
	if r.recv != nil && r.recv.done.Load() {
		r.n = r.recv.n
		r.done = true
	}
	if r.rts != nil && r.rts.copied.Load() {
		r.n = r.rts.n
		r.done = true
	}
	return r.done
}

// Bytes returns the transferred byte count of a completed request.
func (r *Request) Bytes() int { return r.n }

func (p *Proc) isend(commID uint64, buf []byte, dstGlobal, tag int) *Request {
	if dstGlobal == p.id {
		panic("mpibase: self-send is not supported")
	}
	if !p.rt.place.SameNode(p.id, dstGlobal) {
		p.rt.net.Transfer(len(buf))
	}
	box := p.rt.boxes[dstGlobal]
	if len(buf) <= p.rt.cfg.EagerMax {
		// Eager: copy payload into the library (first copy) under the lock;
		// match a posted receive if present (second copy).
		box.mu.Lock()
		for i, pr := range box.posted {
			if pr.src == p.id && pr.tag == tag && pr.comm == commID {
				n := copyChecked(pr.buf, buf)
				box.posted = append(box.posted[:i], box.posted[i+1:]...)
				box.mu.Unlock()
				pr.n = n
				pr.done.Store(true)
				return &Request{done: true, n: n}
			}
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		box.unexpected = append(box.unexpected, &inMsg{src: p.id, tag: tag, comm: commID, data: cp})
		box.mu.Unlock()
		return &Request{done: true, n: len(buf)}
	}
	// Rendezvous: publish RTS; the receiver copies out of our buffer.
	rts := &rtsRecord{payload: buf}
	box.mu.Lock()
	for i, pr := range box.posted {
		if pr.src == p.id && pr.tag == tag && pr.comm == commID {
			n := copyChecked(pr.buf, buf)
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			box.mu.Unlock()
			pr.n = n
			pr.done.Store(true)
			return &Request{done: true, n: n}
		}
	}
	box.unexpected = append(box.unexpected, &inMsg{src: p.id, tag: tag, comm: commID, rts: rts})
	box.mu.Unlock()
	return &Request{rts: rts}
}

func (p *Proc) irecv(commID uint64, buf []byte, srcGlobal, tag int) *Request {
	if srcGlobal == p.id {
		panic("mpibase: self-receive is not supported")
	}
	box := p.rt.boxes[p.id]
	box.mu.Lock()
	for i, m := range box.unexpected {
		if m.src == srcGlobal && m.tag == tag && m.comm == commID {
			box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
			box.mu.Unlock()
			var n int
			if m.rts != nil {
				n = copyChecked(buf, m.rts.payload)
				m.rts.n = n
				m.rts.copied.Store(true) // release the sender
			} else {
				n = copyChecked(buf, m.data)
			}
			return &Request{done: true, n: n}
		}
	}
	pr := &postedRecv{src: srcGlobal, tag: tag, comm: commID, buf: buf}
	box.posted = append(box.posted, pr)
	box.mu.Unlock()
	return &Request{recv: pr}
}

func copyChecked(dst, src []byte) int {
	if len(src) > len(dst) {
		panic(fmt.Sprintf("mpibase: %d-byte message overflows %d-byte receive buffer", len(src), len(dst)))
	}
	return copy(dst, src)
}

// waitReq blocks until req completes.
func (p *Proc) waitReq(req *Request) int {
	p.wait.Wait(req.Done)
	return req.n
}
