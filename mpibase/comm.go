package mpibase

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/collective"
)

// commShared is the rank-independent state of one communicator.
type commShared struct {
	id      uint64
	members []int
	indexOf map[int]int
	// split scratch; writes disjoint per rank, fenced by barriers.
	splitBuf []splitEntry
}

type splitEntry struct{ color, key int }

type splitKey struct {
	parent uint64
	epoch  uint64
	color  int
}

func (rt *Runtime) newCommShared(members []int) *commShared {
	sh := &commShared{
		id:       rt.ids.Add(1),
		members:  members,
		indexOf:  make(map[int]int, len(members)),
		splitBuf: make([]splitEntry, len(members)),
	}
	for cr, g := range members {
		sh.indexOf[g] = cr
	}
	return sh
}

// Comm is a communicator handle (the analogue of MPI_Comm).
type Comm struct {
	p          *Proc
	sh         *commShared
	myRank     int
	splitEpoch uint64
}

// Rank returns the caller's rank in the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.sh.members) }

func (c *Comm) checkPeer(peer int, what string) {
	if peer < 0 || peer >= len(c.sh.members) {
		panic(fmt.Sprintf("mpibase: %s rank %d out of range [0,%d)", what, peer, len(c.sh.members)))
	}
}

func checkTag(tag int) {
	if tag < 0 || tag >= collTagBase {
		panic(fmt.Sprintf("mpibase: tag %d outside [0, %d)", tag, collTagBase))
	}
}

// Send blocks until buf is reusable (eager: buffered; rendezvous: delivered).
func (c *Comm) Send(buf []byte, dst, tag int) {
	c.checkPeer(dst, "destination")
	checkTag(tag)
	c.p.waitReq(c.p.isend(c.sh.id, buf, c.sh.members[dst], tag))
}

// Recv blocks until a matching message is delivered into buf.
func (c *Comm) Recv(buf []byte, src, tag int) int {
	c.checkPeer(src, "source")
	checkTag(tag)
	return c.p.waitReq(c.p.irecv(c.sh.id, buf, c.sh.members[src], tag))
}

// Isend starts a nonblocking send.
func (c *Comm) Isend(buf []byte, dst, tag int) *Request {
	c.checkPeer(dst, "destination")
	checkTag(tag)
	return c.p.isend(c.sh.id, buf, c.sh.members[dst], tag)
}

// Irecv starts a nonblocking receive.
func (c *Comm) Irecv(buf []byte, src, tag int) *Request {
	c.checkPeer(src, "source")
	checkTag(tag)
	return c.p.irecv(c.sh.id, buf, c.sh.members[src], tag)
}

// Wait blocks until req completes.  A nil request is a no-op
// (MPI_REQUEST_NULL).
func (c *Comm) Wait(req *Request) int {
	if req == nil {
		return 0
	}
	return c.p.waitReq(req)
}

// Waitall completes every request, skipping nil entries (the analogue of
// MPI_REQUEST_NULL slots in an MPI_Waitall array).
func (c *Comm) Waitall(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			c.p.waitReq(r)
		}
	}
}

// internal send/recv on the reserved collective tag space.
func (c *Comm) csend(buf []byte, dst, tag int) {
	c.p.waitReq(c.p.isend(c.sh.id, buf, c.sh.members[dst], tag))
}
func (c *Comm) crecv(buf []byte, src, tag int) int {
	return c.p.waitReq(c.p.irecv(c.sh.id, buf, c.sh.members[src], tag))
}

// Barrier is a dissemination barrier: ceil(log2(n)) rounds of pairwise
// token exchanges (the classic process-model algorithm; contrast with
// Pure's SPTD barrier which needs no messages within a node).
func (c *Comm) Barrier() {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.myRank
	token := []byte{1}
	in := make([]byte, 1)
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		tag := collTagBase + round
		req := c.p.irecv(c.sh.id, in, c.sh.members[from], tag)
		c.p.waitReq(c.p.isend(c.sh.id, token, c.sh.members[to], tag))
		c.p.waitReq(req)
	}
}

// Bcast distributes root's buf via a binomial tree.
func (c *Comm) Bcast(buf []byte, root int) {
	c.checkPeer(root, "root")
	n := c.Size()
	if n == 1 {
		return
	}
	v := (c.myRank - root + n) % n
	toReal := func(u int) int { return (u + root) % n }
	mask := 1
	for mask < n {
		if v&mask != 0 {
			c.crecv(buf, toReal(v-mask), collTagBase+16)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if v+mask < n {
			c.csend(buf, toReal(v+mask), collTagBase+16)
		}
		mask >>= 1
	}
}

// Reduce folds every rank's in into root's out via a binomial tree.
// Non-root ranks may pass nil out.
func (c *Comm) Reduce(in, out []byte, root int, op Op, dt DType) {
	c.checkPeer(root, "root")
	if c.myRank == root && out == nil {
		panic("mpibase: root must supply an output buffer to Reduce")
	}
	n := c.Size()
	acc := make([]byte, len(in))
	copy(acc, in)
	v := (c.myRank - root + n) % n
	toReal := func(u int) int { return (u + root) % n }
	var tmp []byte
	for mask := 1; mask < n; mask <<= 1 {
		if v&mask != 0 {
			// Forward our partial up the tree and we are done (the root has
			// v == 0 and never takes this branch).
			c.csend(acc, toReal(v-mask), collTagBase+17)
			return
		}
		if v+mask < n {
			if tmp == nil {
				tmp = make([]byte, len(in))
			}
			c.crecv(tmp[:len(in)], toReal(v+mask), collTagBase+17)
			collective.Accumulate(acc, tmp[:len(in)], op, dt)
		}
	}
	// Only the root reaches here.
	copy(out, acc)
}

// Allreduce folds every rank's in into every rank's out (reduce + bcast).
func (c *Comm) Allreduce(in, out []byte, op Op, dt DType) {
	c.Reduce(in, out, 0, op, dt)
	c.Bcast(out, 0)
}

// Split partitions the communicator like MPI_Comm_split (color < 0 opts out).
func (c *Comm) Split(color, key int) *Comm {
	sh := c.sh
	sh.splitBuf[c.myRank] = splitEntry{color: color, key: key}
	c.Barrier()
	c.splitEpoch++
	var newComm *Comm
	if color >= 0 {
		type member struct{ key, commRank int }
		var group []member
		for cr, e := range sh.splitBuf {
			if e.color == color {
				group = append(group, member{e.key, cr})
			}
		}
		sort.Slice(group, func(a, b int) bool {
			if group[a].key != group[b].key {
				return group[a].key < group[b].key
			}
			return group[a].commRank < group[b].commRank
		})
		members := make([]int, len(group))
		for i, g := range group {
			members[i] = sh.members[g.commRank]
		}
		k := splitKey{parent: sh.id, epoch: c.splitEpoch, color: color}
		fresh := c.p.rt.newCommShared(members)
		v, _ := c.p.rt.comms.LoadOrStore(k, fresh)
		newSh := v.(*commShared)
		newComm = &Comm{p: c.p, sh: newSh, myRank: newSh.indexOf[c.p.id]}
	}
	c.Barrier()
	return newComm
}

// Allreduce for non-root ranks needs a buffer too; typed helpers below keep
// application code compact (mirroring package pure's helpers).

// AllreduceFloat64s element-wise sums/folds in into out across all ranks.
func (c *Comm) AllreduceFloat64s(in, out []float64, op Op) {
	ib := codec.Float64Bytes(in)
	ob := make([]byte, len(ib))
	c.Allreduce(ib, ob, op, Float64)
	codec.GetFloat64s(out, ob)
}

// AllreduceFloat64 folds a single float64 across all ranks.
func (c *Comm) AllreduceFloat64(v float64, op Op) float64 {
	out := make([]float64, 1)
	c.AllreduceFloat64s([]float64{v}, out, op)
	return out[0]
}

// AllreduceInt64 folds a single int64 across all ranks.
func (c *Comm) AllreduceInt64(v int64, op Op) int64 {
	ib := codec.Int64Bytes([]int64{v})
	ob := make([]byte, 8)
	c.Allreduce(ib, ob, op, Int64)
	out := make([]int64, 1)
	codec.GetInt64s(out, ob)
	return out[0]
}

// SendFloat64s sends a float64 vector.
func (c *Comm) SendFloat64s(vals []float64, dst, tag int) {
	c.Send(codec.Float64Bytes(vals), dst, tag)
}

// RecvFloat64s receives exactly len(vals) float64s.
func (c *Comm) RecvFloat64s(vals []float64, src, tag int) {
	b := make([]byte, 8*len(vals))
	n := c.Recv(b, src, tag)
	codec.GetFloat64s(vals[:n/8], b[:n])
}

// BcastFloat64s broadcasts root's vals to everyone.
func (c *Comm) BcastFloat64s(vals []float64, root int) {
	b := make([]byte, 8*len(vals))
	if c.Rank() == root {
		codec.PutFloat64s(b, vals)
	}
	c.Bcast(b, root)
	codec.GetFloat64s(vals, b)
}

// ---- Extension collectives (matching package pure's extended surface) ----

// Gather collects every rank's equal-sized in payload into root's out
// buffer (Size()*len(in) bytes at the root; others may pass nil).
func (c *Comm) Gather(in, out []byte, root int) {
	c.checkPeer(root, "root")
	n := c.Size()
	if c.myRank == root {
		if len(out) < n*len(in) {
			panic(fmt.Sprintf("mpibase: Gather root buffer %d too small for %d x %d", len(out), n, len(in)))
		}
		copy(out[root*len(in):], in)
		for cr := 0; cr < n; cr++ {
			if cr == root {
				continue
			}
			c.crecv(out[cr*len(in):(cr+1)*len(in)], cr, collTagBase+18)
		}
		return
	}
	c.csend(in, root, collTagBase+18)
}

// Allgather collects every rank's in into every rank's out.
func (c *Comm) Allgather(in, out []byte) {
	if len(out) < c.Size()*len(in) {
		panic(fmt.Sprintf("mpibase: Allgather buffer %d too small for %d x %d", len(out), c.Size(), len(in)))
	}
	c.Gather(in, out, 0)
	c.Bcast(out[:c.Size()*len(in)], 0)
}

// Scatter distributes len(out)-byte slices of root's in to every rank's out.
func (c *Comm) Scatter(in, out []byte, root int) {
	c.checkPeer(root, "root")
	n := c.Size()
	if c.myRank == root {
		if len(in) < n*len(out) {
			panic(fmt.Sprintf("mpibase: Scatter root buffer %d too small for %d x %d", len(in), n, len(out)))
		}
		copy(out, in[root*len(out):(root+1)*len(out)])
		for cr := 0; cr < n; cr++ {
			if cr == root {
				continue
			}
			c.csend(in[cr*len(out):(cr+1)*len(out)], cr, collTagBase+19)
		}
		return
	}
	c.crecv(out, root, collTagBase+19)
}

// Sendrecv pairs a send and a receive without deadlock risk (the analogue
// of MPI_Sendrecv); returns the received byte count.
func (c *Comm) Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) int {
	c.checkPeer(dst, "destination")
	c.checkPeer(src, "source")
	checkTag(sendTag)
	checkTag(recvTag)
	rreq := c.p.irecv(c.sh.id, recvBuf, c.sh.members[src], recvTag)
	sreq := c.p.isend(c.sh.id, sendBuf, c.sh.members[dst], sendTag)
	c.p.waitReq(sreq)
	return c.p.waitReq(rreq)
}
