// Stencil is the paper's §2 running example (Listing 2): a 1-D stencil
// whose per-element "random work" takes variable time, creating load
// imbalance that Pure Tasks absorb — blocked neighbours steal chunks of the
// rand_work task while they wait for messages.
//
//	go run ./examples/stencil
//	go run ./examples/stencil -trace trace.json -metrics metrics.prom
//	go run ./examples/stencil -trace-bin trace.bin -monitor :8080
//
// -trace writes the tasked run's event timeline in the Chrome trace_event
// format (load it in chrome://tracing or https://ui.perfetto.dev); -metrics
// writes a Prometheus text-format snapshot of the runtime counters;
// -trace-bin writes the binary trace dump that `puretrace analyze` consumes;
// -monitor serves the live runtime monitor (/metrics, /ranks, /debug/pprof)
// while the tasked run executes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/comm"
	"repro/internal/apps/stencil"
	"repro/pure"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace of the tasked run to this file")
	metricsOut := flag.String("metrics", "", "write a Prometheus metrics snapshot of the tasked run to this file")
	traceBinOut := flag.String("trace-bin", "", "write a binary trace dump of the tasked run (for puretrace) to this file")
	monitorAddr := flag.String("monitor", "", "serve the live runtime monitor on this address during the tasked run (e.g. :8080)")
	useRMA := flag.Bool("rma", true, "also run the one-sided (Put+Notify) halo-exchange variant")
	useChannels := flag.Bool("channels", true, "also run the persistent-channel halo-exchange variant")
	flag.Parse()

	const nranks = 8
	params := stencil.Params{ArrSize: 512, Iters: 20, WorkScale: 24}

	run := func(useTask, observed bool) (time.Duration, float64) {
		p := params
		p.UseTask = useTask
		cfg := pure.Config{NRanks: nranks}
		if observed && (*traceOut != "" || *traceBinOut != "") {
			cfg.Trace = pure.NewTrace(nranks, 0)
		}
		if observed && *metricsOut != "" {
			cfg.Metrics = pure.NewMetrics()
		}
		if observed && *monitorAddr != "" {
			cfg.MonitorAddr = *monitorAddr
			if cfg.Metrics == nil {
				cfg.Metrics = pure.NewMetrics() // give /metrics the runtime series
			}
		}
		var checksum float64
		start := time.Now()
		rep, err := comm.RunPureWithReport(cfg, func(b comm.Backend) {
			res, err := stencil.Run(b, p)
			if err != nil {
				log.Fatal(err)
			}
			if b.Rank() == 0 {
				checksum = res.Checksum
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if observed {
			writeObservability(&rep, *traceOut, *metricsOut, *traceBinOut)
		}
		return elapsed, checksum
	}

	// The one-sided variant: halo exchange by Put + Notify into the
	// neighbours' windows instead of message pairs.
	runRMA := func() (time.Duration, float64) {
		var checksum float64
		start := time.Now()
		if err := pure.Run(pure.Config{NRanks: nranks}, func(r *pure.Rank) {
			res, err := stencil.RunRMA(r, params)
			if err != nil {
				log.Fatal(err)
			}
			if r.ID() == 0 {
				checksum = res.Checksum
			}
		}); err != nil {
			log.Fatal(err)
		}
		return time.Since(start), checksum
	}

	// The persistent-channel variant: identical stencil, but the halo
	// exchange binds its four neighbour endpoints once before the loop
	// (stencil.RunChannels) instead of re-resolving the pair on every
	// Sendrecv call — the endpoint idiom new code should prefer.
	//
	// Before (wrapper path, per iteration):
	//	comm.SendrecvFloat64s(b, temp[:1], rank-1, 0, one, rank-1, 0)
	// After (persistent channels, bound once):
	//	loSend := comm.SendChannelOf(b, rank-1, 0)   // outside the loop
	//	loRecv := comm.RecvChannelOf(b, rank-1, 0)
	//	... per iteration: loRecv.Irecv(loIn); loSend.Send(loOut)
	runChannels := func() (time.Duration, float64) {
		var checksum float64
		start := time.Now()
		if err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
			res, err := stencil.RunChannels(b, params)
			if err != nil {
				log.Fatal(err)
			}
			if b.Rank() == 0 {
				checksum = res.Checksum
			}
		}); err != nil {
			log.Fatal(err)
		}
		return time.Since(start), checksum
	}

	plain, sum1 := run(false, false)
	tasked, sum2 := run(true, true)
	fmt.Printf("rand-stencil over %d Pure ranks, %d iters\n", nranks, params.Iters)
	fmt.Printf("  without tasks: %v (checksum %.6f)\n", plain, sum1)
	fmt.Printf("  with tasks:    %v (checksum %.6f)\n", tasked, sum2)
	if sum1 != sum2 {
		log.Fatalf("checksums diverged: %v vs %v", sum1, sum2)
	}
	fmt.Println("checksums match: task execution is semantics-preserving")
	if *useChannels {
		chTime, sum4 := runChannels()
		fmt.Printf("  persistent channels: %v (checksum %.6f)\n", chTime, sum4)
		if sum4 != sum1 {
			log.Fatalf("channel checksum diverged: %v vs %v", sum4, sum1)
		}
		fmt.Println("persistent-channel halo exchange matches the wrapper trajectory")
	}
	if *useRMA {
		oneSided, sum3 := runRMA()
		fmt.Printf("  one-sided halo (Put+Notify): %v (checksum %.6f)\n", oneSided, sum3)
		if sum3 != sum1 {
			log.Fatalf("RMA checksum diverged: %v vs %v", sum3, sum1)
		}
		fmt.Println("RMA halo exchange matches the message-passing trajectory")
	}
}

// writeObservability exports the tasked run's trace and metrics to the files
// requested on the command line.
func writeObservability(rep *pure.Report, traceOut, metricsOut, traceBinOut string) {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %d trace events (%d dropped) to %s\n",
			rep.Trace.Len(), rep.Trace.Dropped(), traceOut)
	}
	if traceBinOut != "" {
		f, err := os.Create(traceBinOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteTraceBin(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote binary trace dump to %s (inspect with `puretrace analyze %s`)\n",
			traceBinOut, traceBinOut)
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Metrics.Snapshot().WritePrometheus(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote metrics snapshot to %s\n", metricsOut)
	}
}
