// Stencil is the paper's §2 running example (Listing 2): a 1-D stencil
// whose per-element "random work" takes variable time, creating load
// imbalance that Pure Tasks absorb — blocked neighbours steal chunks of the
// rand_work task while they wait for messages.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"time"

	"repro/comm"
	"repro/internal/apps/stencil"
	"repro/pure"
)

func main() {
	const nranks = 8
	params := stencil.Params{ArrSize: 512, Iters: 20, WorkScale: 24}

	run := func(useTask bool) (time.Duration, float64) {
		p := params
		p.UseTask = useTask
		var checksum float64
		start := time.Now()
		err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
			res, err := stencil.Run(b, p)
			if err != nil {
				log.Fatal(err)
			}
			if b.Rank() == 0 {
				checksum = res.Checksum
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), checksum
	}

	plain, sum1 := run(false)
	tasked, sum2 := run(true)
	fmt.Printf("rand-stencil over %d Pure ranks, %d iters\n", nranks, params.Iters)
	fmt.Printf("  without tasks: %v (checksum %.6f)\n", plain, sum1)
	fmt.Printf("  with tasks:    %v (checksum %.6f)\n", tasked, sum2)
	if sum1 != sum2 {
		log.Fatalf("checksums diverged: %v vs %v", sum1, sum2)
	}
	fmt.Println("checksums match: task execution is semantics-preserving")
}
