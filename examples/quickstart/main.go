// Quickstart: the smallest complete Pure program — point-to-point messages,
// a barrier, a typed all-reduce, and a communicator split.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pure"
)

func main() {
	const nranks = 8
	err := pure.Run(pure.Config{NRanks: nranks}, func(r *pure.Rank) {
		world := r.World()

		// Ring-pass a token: each rank sends to its right neighbour.
		token := []byte{byte(r.ID())}
		next := (r.ID() + 1) % nranks
		prev := (r.ID() + nranks - 1) % nranks
		got := make([]byte, 1)
		if r.ID()%2 == 0 {
			world.Send(token, next, 0)
			world.Recv(got, prev, 0)
		} else {
			world.Recv(got, prev, 0)
			world.Send(token, next, 0)
		}
		if got[0] != byte(prev) {
			log.Fatalf("rank %d: got token %d, want %d", r.ID(), got[0], prev)
		}

		world.Barrier()

		// Typed collective: sum the rank ids.
		sum := world.AllreduceFloat64(float64(r.ID()), pure.Sum)
		if r.ID() == 0 {
			fmt.Printf("sum of ranks 0..%d = %v\n", nranks-1, sum)
		}

		// Split into even/odd sub-communicators and reduce within each.
		sub := world.Split(r.ID()%2, r.ID())
		subSum := sub.AllreduceFloat64(float64(r.ID()), pure.Sum)
		if sub.Rank() == 0 {
			fmt.Printf("parity %d sub-communicator (size %d): sum = %v\n",
				r.ID()%2, sub.Size(), subSum)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
