// miniAMR example: the adaptive-mesh-refinement proxy (paper §5.3) on the
// Pure runtime.  A spherical object moves through the unit cube; blocks near
// its surface refine (raising their resolution and face-message sizes) and
// coarsen after it passes.  Face payloads cross the eager/rendezvous
// threshold as levels change, exercising both intra-node protocols.
//
//	go run ./examples/miniamr
package main

import (
	"fmt"
	"log"

	"repro/comm"
	"repro/internal/apps/miniamr"
	"repro/pure"
)

func main() {
	const nranks = 8
	p := miniamr.Params{
		Grid:         [3]int{2, 2, 2},
		BaseCells:    6,
		MaxLevel:     2,
		Steps:        24,
		RefineRate:   6,
		ObjectRadius: 0.25,
		ObjectSpeed:  0.04,
	}

	var res miniamr.Result
	err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
		r, err := miniamr.Run(b, p)
		if err != nil {
			log.Fatal(err)
		}
		if b.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miniAMR on %d Pure ranks: %d steps\n", nranks, res.Steps)
	fmt.Printf("  refinement events: %d\n", res.Refines)
	fmt.Printf("  final cells:       %d (level-0 mesh would be %d)\n",
		res.TotalCells, int64(nranks)*int64(p.BaseCells*p.BaseCells*p.BaseCells))
	fmt.Printf("  checksum:          %.6f\n", res.Checksum)
}
