// Multinode: a Pure program spanning several virtual Cori nodes with the
// Aries-like network model, sparse placement, and helper threads — the
// configuration of the paper's DT class A experiment (40 ranks on 64-thread
// nodes, idle threads donated to helper threads that steal task chunks).
//
//	go run ./examples/multinode
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/pure"
)

func main() {
	const (
		nranks       = 12
		ranksPerNode = 4 // sparse: Cori nodes have 64 hardware threads
		nodes        = 3
	)
	cfg := pure.Config{
		NRanks:       nranks,
		Spec:         pure.CoriNode(nodes),
		RanksPerNode: ranksPerNode,
		Net:          scaledAries(),
	}

	run := func(helpers int) (time.Duration, int64) {
		c := cfg
		c.HelpersPerNode = helpers
		var stolen atomic.Int64
		start := time.Now()
		err := pure.Run(c, func(r *pure.Rank) {
			world := r.World()
			// Each node's leader owns an imbalanced task; node-mates block
			// on its release message — their SSW-Loops (and any helper
			// threads) steal chunks meanwhile.
			data := make([]float64, 1<<14)
			task := r.NewTask(64, func(start, end int64, _ any) {
				lo, hi := int64(0), int64(0)
				_ = lo
				_ = hi
				for ch := start; ch < end; ch++ {
					l, h := int(ch)*len(data)/64, (int(ch)+1)*len(data)/64
					for i := l; i < h; i++ {
						v := data[i]
						for k := 0; k < 400; k++ {
							v += float64(k) * 1e-9
						}
						data[i] = v
					}
				}
			})
			nodeLead := r.ID() / ranksPerNode * ranksPerNode
			buf := make([]byte, 8)
			for step := 0; step < 10; step++ {
				if r.ID() == nodeLead {
					// The leader owns the imbalanced task; its node-mates
					// block on the release message below and steal chunks
					// from it while they wait.
					stats := task.Execute(nil)
					stolen.Add(stats.StolenChunks)
					for peer := nodeLead + 1; peer < nodeLead+ranksPerNode; peer++ {
						world.Send(buf, peer, 0)
					}
				} else {
					world.Recv(buf, nodeLead, 0) // SSW-Loop steals here
				}
				_ = world.AllreduceFloat64(float64(step), pure.Max)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), stolen.Load()
	}

	fmt.Printf("Pure over %d virtual nodes (%d ranks, %d per node, Aries net model)\n",
		nodes, nranks, ranksPerNode)
	t0, s0 := run(0)
	fmt.Printf("  without helper threads: %v, %d task chunks stolen\n", t0, s0)
	t1, s1 := run(4)
	fmt.Printf("  with 4 helpers/node:    %v, %d task chunks stolen\n", t1, s1)
	fmt.Println("helper threads occupy the idle hardware threads the sparse placement")
	fmt.Println("leaves behind and steal task chunks (wall-clock gains need real cores;")
	fmt.Println("this host multiplexes every rank onto one CPU)")
}

// scaledAries shrinks the Aries latencies so the example runs fast on a
// laptop while keeping the inter/intra-node cost ratio.
func scaledAries() pure.NetConfig {
	n := pure.AriesNet()
	n.TimeScale = 20
	return n
}
