// CoMD example: molecular dynamics over the Pure runtime (paper §5.2),
// including the statically imbalanced variant (void spheres) with the force
// kernel as a stealable Pure Task.
//
//	go run ./examples/comd
package main

import (
	"fmt"
	"log"

	"repro/comm"
	"repro/internal/apps/comd"
	"repro/pure"
)

func main() {
	const nranks = 8
	base := comd.Params{
		Grid:         [3]int{2, 2, 2},
		CellsPerRank: [3]int{3, 3, 3},
		AtomsPerCell: 4,
		Steps:        20,
		PrintRate:    5,
	}

	run := func(name string, p comd.Params) comd.Result {
		var res comd.Result
		err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
			r, err := comd.Run(b, p)
			if err != nil {
				log.Fatal(err)
			}
			if b.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s atoms=%-5d KE=%-12.6g PE=%-12.6g checksum=%.6g\n",
			name, res.Atoms, res.Kinetic, res.Potential, res.Checksum)
		return res
	}

	fmt.Printf("CoMD on %d Pure ranks (%v grid, %v cells/rank)\n", nranks, base.Grid, base.CellsPerRank)
	balanced := run("balanced", base)

	voids := base
	voids.Voids = []comd.Sphere{{Center: comd.Vec3{X: 3, Y: 3, Z: 3}, Radius: 2.0}}
	run("with void spheres", voids)

	tasked := voids
	tasked.UseTask = true
	withTask := run("voids + Pure Task", tasked)

	// The task-parallel force kernel must not change the physics.
	if withTask.Atoms == balanced.Atoms {
		log.Fatal("voids removed no atoms?")
	}
	fmt.Println("force kernel ran as a Pure Task; idle ranks stole chunks during the halo exchange")
}
