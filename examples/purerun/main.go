// Command purerun-worker is the example worker for the purerun launcher: a
// small SPMD program that runs iterated Allreduces (with a ping-pong leg
// between neighbouring ranks) and verifies every result.  The same binary
// works standalone — with no PURE_ADDRS in the environment it runs all
// ranks in one process — or as one node of a multi-process job:
//
//	go build -o /tmp/worker ./examples/purerun
//	go run ./cmd/purerun -n 2 -ranks 4 /tmp/worker
//
// Environment knobs (beyond the launcher's PURE_NODE/PURE_ADDRS/PURE_JOB,
// and PURE_MONITOR, which purerun -monitor sets to this node's live-monitor
// listen address):
//
//	PURE_NRANKS    total ranks (default 4; must divide evenly over nodes)
//	PURE_ITERS     Allreduce iterations (default 50)
//	PURE_HB_MS     transport heartbeat interval in ms (chaos tuning)
//	PURE_DEAD_MS   transport peer-death silence threshold in ms
//	PURE_HANG_MS   watchdog hang timeout in ms (default 30000)
//	PURE_DROP      transport fault plan: drop probability in [0,1]
//	PURE_DELAY_MS  transport fault plan: max injected delay in ms (p=0.1)
//	PURE_TRACE_BIN write this node's binary trace dump here after the run; a
//	               "%d" in the path becomes the node id (else multi-node runs
//	               append ".node<id>").  Feed the per-node dumps to
//	               `puretrace merge` for the cluster-wide timeline.
//
// Exit codes: 0 success, 3 a peer node died (the structured *RunError named
// it), 1 anything else.  The node-death path prints one machine-readable
// line, "NODEDEAD dead=<nodes>", which the live chaos suite asserts on.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/pure"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
		fmt.Fprintf(os.Stderr, "worker: bad %s=%q\n", name, s)
		os.Exit(1)
	}
	return def
}

func main() {
	tcfg, err := pure.TransportFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	nranks := envInt("PURE_NRANKS", 4)
	iters := envInt("PURE_ITERS", 50)
	nodes := 1
	if tcfg != nil {
		nodes = len(tcfg.Addrs)
		if ms := envInt("PURE_HB_MS", 0); ms > 0 {
			tcfg.HeartbeatEvery = time.Duration(ms) * time.Millisecond
		}
		if ms := envInt("PURE_DEAD_MS", 0); ms > 0 {
			tcfg.PeerDeadAfter = time.Duration(ms) * time.Millisecond
		}
		if s := os.Getenv("PURE_DROP"); s != "" {
			p, err := strconv.ParseFloat(s, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "worker: bad PURE_DROP=%q\n", s)
				os.Exit(1)
			}
			tcfg.Faults.Seed, tcfg.Faults.DropProb = 7, p
		}
		if ms := envInt("PURE_DELAY_MS", 0); ms > 0 {
			tcfg.Faults.Seed = 7
			tcfg.Faults.DelayProb = 0.1
			tcfg.Faults.DelayMax = time.Duration(ms) * time.Millisecond
		}
	}
	if nranks%nodes != 0 {
		fmt.Fprintf(os.Stderr, "worker: PURE_NRANKS=%d does not divide over %d nodes\n", nranks, nodes)
		os.Exit(1)
	}
	perNode := nranks / nodes

	cfg := pure.Config{
		NRanks:      nranks,
		Spec:        pure.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: perNode, ThreadsPerCore: 1},
		Transport:   tcfg,
		HangTimeout: time.Duration(envInt("PURE_HANG_MS", 30000)) * time.Millisecond,
		MonitorAddr: os.Getenv("PURE_MONITOR"),
	}
	traceBin := os.Getenv("PURE_TRACE_BIN")
	if traceBin != "" {
		cfg.Trace = pure.NewTrace(nranks, 0)
		if strings.Contains(traceBin, "%d") {
			traceBin = fmt.Sprintf(traceBin, envInt("PURE_NODE", 0))
		} else if nodes > 1 {
			traceBin = fmt.Sprintf("%s.node%d", traceBin, envInt("PURE_NODE", 0))
		}
	}
	rep, err := pure.RunWithReport(cfg, func(r *pure.Rank) {
		w := r.World()
		me, n := r.ID(), r.NRanks()
		in, out := make([]byte, 8), make([]byte, 8)
		buf := make([]byte, 8)
		for i := 0; i < iters; i++ {
			binary.LittleEndian.PutUint64(in, uint64(me+i))
			w.Allreduce(in, out, pure.Sum, pure.Int64)
			want := uint64(n*i + n*(n-1)/2)
			if got := binary.LittleEndian.Uint64(out); got != want {
				panic(fmt.Sprintf("iter %d: allreduce %d, want %d", i, got, want))
			}
			// One ping-pong leg between even/odd neighbours per iteration.
			if me%2 == 0 && me+1 < n {
				w.Send(in, me+1, 1)
				w.Recv(buf, me+1, 2)
			} else if me%2 == 1 {
				w.Recv(buf, me-1, 1)
				w.Send(buf, me-1, 2)
			}
			if me == 0 && i == 0 {
				fmt.Println("LOOP") // first iteration done: links are up
			}
		}
		if me == 0 {
			fmt.Printf("OK ranks=%d nodes=%d iters=%d\n", n, nodes, iters)
		}
	})
	if err != nil {
		var re *pure.RunError
		if errors.As(err, &re) && re.Cause == pure.CauseNodeDead {
			fmt.Printf("NODEDEAD dead=%v\n", re.DeadNodes)
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	if traceBin != "" {
		f, err := os.Create(traceBin)
		if err == nil {
			err = rep.WriteTraceBin(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: writing trace %s: %v\n", traceBin, err)
			os.Exit(1)
		}
		fmt.Printf("TRACE %s\n", traceBin)
	}
}
