package pure

import (
	"bytes"
	"fmt"
	"testing"
)

// TestShmemMallocSymmetric pins the symmetric-heap contract: every rank
// runs the same Malloc/Free sequence and must compute identical offsets,
// including reuse of freed holes, with no communication.
func TestShmemMallocSymmetric(t *testing.T) {
	const n = 4
	err := Run(Config{NRanks: n}, func(r *Rank) {
		s := r.World().ShmemCreate(1<<16, 0)
		a := s.Malloc(100) // rounds to 104
		b := s.Malloc(8)
		c := s.Malloc(256)
		s.Free(b)
		d := s.Malloc(8) // first-fit reuse of b's hole
		offs := []int64{a, b, c, d}
		// Exchange rank 0's view and compare: Allgather via the heap itself.
		tbl := s.Malloc(8 * int64(len(offs)))
		for i, o := range offs {
			s.AtomicStore(0, tbl+int64(i*8), o)
		}
		s.Barrier()
		if s.Rank() != 0 {
			for i, o := range offs {
				if got := s.AtomicLoad(0, tbl+int64(i*8)); got != o {
					r.Abort(fmt.Errorf("offset %d: rank %d computed %d, rank 0 published %d", i, s.Rank(), o, got))
				}
			}
		}
		if d != b {
			r.Abort(fmt.Errorf("freed hole not reused: Malloc returned %d, want %d", d, b))
		}
		s.Barrier()
		s.FreeHeap()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemPutGet moves ID-stamped patterns around the ring through the
// symmetric heap, intra-node.
func TestShmemPutGet(t *testing.T) {
	const n, sz = 4, 256
	err := Run(Config{NRanks: n}, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		buf := s.Malloc(sz)
		me := s.Rank()
		right := (me + 1) % n
		s.Put(right, buf, bytes.Repeat([]byte{byte(me + 1)}, sz))
		s.Barrier()
		left := (me + n - 1) % n
		for i, b := range s.Local()[buf : buf+sz] {
			if b != byte(left+1) {
				r.Abort(fmt.Errorf("local[%d] = %d, want %d", i, b, left+1))
			}
		}
		got := make([]byte, sz)
		s.Get(right, buf, got)
		if got[0] != byte(me+1) {
			r.Abort(fmt.Errorf("Get from %d returned %d, want %d", right, got[0], me+1))
		}
		s.Barrier()
		s.FreeHeap()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemAtomicAddConcurrent hammers one cell on rank 0 from every rank
// concurrently; hardware atomics must make the total exact (run under
// -race: remote applies and local adds hit the same cell).
func TestShmemAtomicAddConcurrent(t *testing.T) {
	const n, iters = 6, 2000
	err := Run(Config{NRanks: n}, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		cell := s.Malloc(8)
		for i := 0; i < iters; i++ {
			s.AtomicAdd(0, cell, 1)
		}
		s.Barrier()
		if s.Rank() == 0 {
			if got := s.AtomicLoad(0, cell); got != n*iters {
				r.Abort(fmt.Errorf("counter = %d, want %d (lost updates)", got, n*iters))
			}
		}
		s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemFetchAddTickets draws tickets from a shared counter with
// AtomicFetchAdd on every rank: the union must be exactly 0..total-1.
func TestShmemFetchAddTickets(t *testing.T) {
	const n, per = 4, 500
	err := Run(Config{NRanks: n}, func(r *Rank) {
		s := r.World().ShmemCreate(1<<16, 0)
		ctr := s.Malloc(8)
		seen := s.Malloc(8 * n * per) // claim table: one cell per ticket
		for i := 0; i < per; i++ {
			tk := s.AtomicFetchAdd(0, ctr, 1)
			if tk < 0 || tk >= n*per {
				r.Abort(fmt.Errorf("ticket %d out of range", tk))
			}
			if prev := s.AtomicFetchAdd(0, seen+8*tk, 1); prev != 0 {
				r.Abort(fmt.Errorf("ticket %d drawn twice", tk))
			}
		}
		s.Barrier()
		if s.Rank() == 0 {
			for tk := int64(0); tk < n*per; tk++ {
				if got := s.AtomicLoad(0, seen+8*tk); got != 1 {
					r.Abort(fmt.Errorf("ticket %d claimed %d times", tk, got))
				}
			}
		}
		s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemCASLock builds a spinlock from AtomicCAS and increments a plain
// (non-atomic) cell under it from every rank: mutual exclusion must make
// the count exact.
func TestShmemCASLock(t *testing.T) {
	const n, iters = 4, 300
	err := Run(Config{NRanks: n}, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		lock := s.Malloc(8)
		count := s.Malloc(8)
		me := int64(s.Rank() + 1)
		for i := 0; i < iters; i++ {
			for s.AtomicCAS(0, lock, 0, me) != 0 {
			}
			v := s.AtomicLoad(0, count)
			s.AtomicStore(0, count, v+1)
			if got := s.AtomicCAS(0, lock, me, 0); got != me {
				r.Abort(fmt.Errorf("lock stolen: holder cell = %d, want %d", got, me))
			}
		}
		s.Barrier()
		if s.Rank() == 0 {
			if got := s.AtomicLoad(0, count); got != n*iters {
				r.Abort(fmt.Errorf("count = %d, want %d (exclusion violated)", got, n*iters))
			}
		}
		s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemRemoteOps runs every addressed operation across the modeled
// network (one rank per node) and checks values end to end.
func TestShmemRemoteOps(t *testing.T) {
	cfg := twoNodeCfg()
	cfg.Metrics = NewMetrics()
	err := Run(cfg, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		blob := s.Malloc(64)
		cell := s.Malloc(8)
		if s.Rank() == 0 {
			s.Put(1, blob, bytes.Repeat([]byte{0x5A}, 64))
			s.AtomicStore(1, cell, 40)
			s.AtomicAdd(1, cell, 1)
			if old := s.AtomicFetchAdd(1, cell, 1); old != 41 {
				r.Abort(fmt.Errorf("remote fetch-add old = %d, want 41", old))
			}
			if old := s.AtomicCAS(1, cell, 42, 7); old != 42 {
				r.Abort(fmt.Errorf("remote cas old = %d, want 42", old))
			}
			if got := s.AtomicLoad(1, cell); got != 7 {
				r.Abort(fmt.Errorf("remote load = %d, want 7", got))
			}
			s.Quiet()
		}
		s.Barrier()
		if s.Rank() == 1 {
			if !bytes.Equal(s.Local()[blob:blob+64], bytes.Repeat([]byte{0x5A}, 64)) {
				r.Abort(fmt.Errorf("remote put payload missing"))
			}
			if got := s.AtomicLoad(1, cell); got != 7 {
				r.Abort(fmt.Errorf("cell = %d after remote ops, want 7", got))
			}
			// Remote Get back from rank 0's (zeroed) region.
			got := make([]byte, 64)
			s.Get(0, blob, got)
			for _, b := range got {
				if b != 0 {
					r.Abort(fmt.Errorf("remote get returned dirty bytes"))
				}
			}
		}
		s.Barrier()
		s.FreeHeap()
	})
	if err != nil {
		t.Fatal(err)
	}
	var packets int64
	for _, c := range cfg.Metrics.Snapshot().Counters {
		if c.Name == "pure_rma_remote_packets_total" {
			packets = c.Value
		}
	}
	if packets == 0 {
		t.Fatal("cross-node shmem ops recorded zero remote packets")
	}
}

// TestChaosShmemRemoteLossy drives remote atomic adds over a lossy,
// duplicating, reordering wire: the reliable link layer must apply every
// add exactly once (exact sum), across several seeds.
func TestChaosShmemRemoteLossy(t *testing.T) {
	const rounds = 40
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := twoNodeCfg()
			cfg.Metrics = NewMetrics()
			cfg.Net.Faults = Faults{
				Seed: seed, DropProb: 0.20, DupProb: 0.10, ReorderProb: 0.10,
				RetryBackoffNs: 20_000,
			}
			err := Run(cfg, func(r *Rank) {
				s := r.World().ShmemCreate(4096, 0)
				cell := s.Malloc(8)
				last := s.Malloc(8)
				if s.Rank() == 0 {
					for i := 1; i <= rounds; i++ {
						s.AtomicAdd(1, cell, int64(i))
						s.AtomicStore(1, last, int64(i))
					}
				}
				s.Barrier()
				if s.Rank() == 1 {
					if got := s.AtomicLoad(1, cell); got != rounds*(rounds+1)/2 {
						r.Abort(fmt.Errorf("sum = %d, want %d (lost or duplicated add)", got, rounds*(rounds+1)/2))
					}
					if got := s.AtomicLoad(1, last); got != rounds {
						r.Abort(fmt.Errorf("last store = %d, want %d (reordered flow)", got, rounds))
					}
				}
				s.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			c := map[string]int64{}
			for _, s := range cfg.Metrics.Snapshot().Counters {
				c[s.Name] = s.Value
			}
			if c["pure_net_drops_injected_total"] > 0 && c["pure_net_retransmits_total"] == 0 {
				t.Errorf("seed %d: %d drops injected but zero retransmits", seed, c["pure_net_drops_injected_total"])
			}
		})
	}
}

// TestShmemMailbox drives the actor layer intra-node: every rank sends a
// numbered stream to rank 0's mailbox, and the owner checks zero loss and
// per-sender FIFO.
func TestShmemMailbox(t *testing.T) {
	const n, per = 4, 200
	err := Run(Config{NRanks: n}, func(r *Rank) {
		s := r.World().ShmemCreate(1<<16, 0)
		mb := s.NewMailbox(0, 8, 32)
		if s.Rank() == 0 {
			next := make([]int, n)
			dst := make([]byte, mb.SlotBytes())
			for got := 0; got < (n-1)*per; got++ {
				m := dst[:mb.Recv(dst)]
				var from, i int
				if _, err := fmt.Sscanf(string(m), "%d:%d", &from, &i); err != nil {
					r.Abort(fmt.Errorf("garbled message %q: %v", m, err))
				}
				if i != next[from] {
					r.Abort(fmt.Errorf("sender %d out of order: got %d, want %d", from, i, next[from]))
				}
				next[from]++
			}
			if _, ok := mb.Poll(dst); ok {
				r.Abort(fmt.Errorf("mailbox not empty after all streams drained"))
			}
		} else {
			for i := 0; i < per; i++ {
				mb.Send([]byte(fmt.Sprintf("%d:%d", s.Rank(), i)))
			}
		}
		s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemMailboxRemote runs a mailbox whose senders are on another node:
// the ring steps become addressed remote operations, and per-sender FIFO
// must survive the modeled network.
func TestShmemMailboxRemote(t *testing.T) {
	const per = 50
	err := Run(twoNodeCfg(), func(r *Rank) {
		s := r.World().ShmemCreate(1<<14, 0)
		mb := s.NewMailbox(0, 4, 16)
		if s.Rank() == 0 {
			dst := make([]byte, mb.SlotBytes())
			for i := 0; i < per; i++ {
				m := dst[:mb.Recv(dst)]
				var got int
				if _, err := fmt.Sscanf(string(m), "m%d", &got); err != nil || got != i {
					r.Abort(fmt.Errorf("message %d arrived as %q", i, m))
				}
			}
			if mb.Notifications() == 0 {
				r.Abort(fmt.Errorf("no notify hints recorded"))
			}
		} else {
			for i := 0; i < per; i++ {
				mb.Send([]byte(fmt.Sprintf("m%d", i)))
			}
		}
		s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemSelect parks one rank on two mailboxes and checks Select wakes
// for whichever one a message lands in.
func TestShmemSelect(t *testing.T) {
	const rounds = 30
	err := Run(Config{NRanks: 3}, func(r *Rank) {
		s := r.World().ShmemCreate(1<<14, 0)
		mbA := s.NewMailbox(0, 4, 16)
		mbB := s.NewMailbox(0, 4, 16)
		if s.Rank() == 0 {
			gotA, gotB := 0, 0
			dst := make([]byte, 16)
			for gotA+gotB < 2*rounds {
				switch i := s.Select(mbA, mbB); i {
				case 0:
					if n, ok := mbA.Poll(dst); !ok || string(dst[:n]) != "from-a" {
						r.Abort(fmt.Errorf("select said A ready but poll got %v", ok))
					}
					gotA++
				case 1:
					if n, ok := mbB.Poll(dst); !ok || string(dst[:n]) != "from-b" {
						r.Abort(fmt.Errorf("select said B ready but poll got %v", ok))
					}
					gotB++
				default:
					r.Abort(fmt.Errorf("select returned %d", i))
				}
			}
			if gotA != rounds || gotB != rounds {
				r.Abort(fmt.Errorf("drained %d/%d, want %d each", gotA, gotB, rounds))
			}
		} else if s.Rank() == 1 {
			for i := 0; i < rounds; i++ {
				mbA.Send([]byte("from-a"))
			}
		} else {
			for i := 0; i < rounds; i++ {
				mbB.Send([]byte("from-b"))
			}
		}
		s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmemMailboxBackpressure fills a tiny ring with a slow consumer:
// blocking Send must wait for recycled slots, never drop or wedge.
func TestShmemMailboxBackpressure(t *testing.T) {
	const per = 100
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		s := r.World().ShmemCreate(4096, 0)
		mb := s.NewMailbox(0, 2, 8) // capacity 2: constant backpressure
		if s.Rank() == 0 {
			dst := make([]byte, 8)
			for i := 0; i < per; i++ {
				m := dst[:mb.Recv(dst)]
				if string(m) != fmt.Sprintf("%03d", i) {
					r.Abort(fmt.Errorf("message %d arrived as %q", i, m))
				}
			}
		} else {
			for i := 0; i < per; i++ {
				mb.Send([]byte(fmt.Sprintf("%03d", i)))
			}
		}
		s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
