package pure

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// chaosSeeds returns the fault-injection seeds to sweep: {1, 2, 3} by
// default, overridable with PURE_CHAOS_SEEDS=comma,separated,ints (the same
// convention the internal/core chaos suite uses).
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("PURE_CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad PURE_CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// twoNodeCfg places one rank per node on a two-node machine so every RMA
// operation between the ranks crosses the modeled network.
func twoNodeCfg() Config {
	return Config{
		NRanks:       2,
		Spec:         Spec{Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
		RanksPerNode: 1,
		Net:          NetConfig{LatencyNs: 200, BytesPerNs: 10, TimeScale: 10},
		HangTimeout:  20 * time.Second,
	}
}

// TestRMAPutGetFence drives the basic fence-epoch cycle intra-node: each
// rank puts its ID-stamped pattern into its right neighbor's window, and
// after the fence everyone observes the neighbor's bytes and can Get them
// back out of any member's window.
func TestRMAPutGetFence(t *testing.T) {
	const n, sz = 4, 256
	err := Run(Config{NRanks: n}, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, sz))
		me := r.ID()
		right := (me + 1) % n
		data := bytes.Repeat([]byte{byte(me + 1)}, sz)
		w.Fence() // open the epoch
		w.Put(data, right, 0)
		w.Fence()
		left := (me + n - 1) % n
		want := byte(left + 1)
		for i, b := range w.Buffer() {
			if b != want {
				r.Abort(fmt.Errorf("window[%d] = %d, want %d", i, b, want))
			}
		}
		// Get from two ranks away via the neighbor's window.
		got := make([]byte, sz)
		w.Get(got, right, 0)
		if got[0] != byte(me+1) {
			r.Abort(fmt.Errorf("Get from %d returned %d, want %d", right, got[0], me+1))
		}
		w.Fence()
		w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRMAIntraNodePutOneCopy is the zero-copy acceptance test: an
// intra-node Put of 8 KiB must move the payload with exactly one copy into
// the target's window memory, never through the send/recv protocol paths.
func TestRMAIntraNodePutOneCopy(t *testing.T) {
	const sz = 8192
	trace := NewTrace(2, 0)
	met := NewMetrics()
	err := Run(Config{NRanks: 2, Trace: trace, Metrics: met}, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, sz))
		w.Fence()
		if r.ID() == 0 {
			w.Put(bytes.Repeat([]byte{0xAB}, sz), 1, 0)
		}
		w.Fence()
		if r.ID() == 1 && w.Buffer()[sz-1] != 0xAB {
			r.Abort(fmt.Errorf("put payload not visible after fence"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := map[string]int64{}
	for _, s := range met.Snapshot().Counters {
		c[s.Name] = s.Value
	}
	if c["pure_rma_put_copies_total"] != 1 {
		t.Errorf("payload copies = %d, want exactly 1 (single-copy Put)", c["pure_rma_put_copies_total"])
	}
	if c["pure_rma_puts_total"] != 1 || c["pure_rma_bytes_total"] != sz {
		t.Errorf("puts = %d bytes = %d, want 1 / %d", c["pure_rma_puts_total"], c["pure_rma_bytes_total"], sz)
	}
	// The payload must not have leaked onto any message-passing path.
	for _, name := range []string{
		"pure_sends_eager_total", "pure_sends_rendezvous_total", "pure_sends_remote_total",
		"pure_rma_remote_packets_total",
	} {
		if c[name] != 0 {
			t.Errorf("%s = %d, want 0 for an intra-node Put", name, c[name])
		}
	}
	var puts, fences int
	rep := &Report{Trace: trace}
	for _, e := range rep.Timeline() {
		switch e.Kind {
		case obs.KRmaPut:
			puts++
			if e.Arg != sz {
				t.Errorf("KRmaPut Arg = %d, want %d", e.Arg, sz)
			}
		case obs.KRmaFence:
			fences++
		}
	}
	if puts != 1 {
		t.Errorf("KRmaPut events = %d, want 1", puts)
	}
	if fences != 4 {
		t.Errorf("KRmaFence events = %d, want 4 (2 ranks x 2 fences)", fences)
	}
}

// TestRMAAccumulateConcurrent hammers one target rank's window with
// concurrent overlapping Accumulates from every other rank; the per-target
// serialization must make the final sums exact (run under -race).
func TestRMAAccumulateConcurrent(t *testing.T) {
	const n, iters, cells = 6, 200, 8
	err := Run(Config{NRanks: n}, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, cells*8))
		w.Fence()
		if r.ID() != 0 {
			one := Int64Bytes([]int64{1, 1, 1, 1, 1, 1, 1, 1})
			for i := 0; i < iters; i++ {
				// Whole-window adds overlap with the half-window adds below.
				w.Accumulate(one, 0, 0, Sum, Int64)
				w.Accumulate(one[:4*8], 0, 4*8, Sum, Int64)
			}
		}
		w.Fence()
		if r.ID() == 0 {
			got := make([]int64, cells)
			GetInt64s(got, w.Buffer())
			for i, v := range got {
				want := int64((n - 1) * iters)
				if i >= 4 {
					want *= 2
				}
				if v != want {
					r.Abort(fmt.Errorf("cell %d = %d, want %d", i, v, want))
				}
			}
		}
		w.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRMAPSCW exercises Post/Start/Complete/Wait neighbor epochs over
// several rounds: even ranks expose, odd ranks write, with round-stamped
// payloads so a stale epoch would be caught.
func TestRMAPSCW(t *testing.T) {
	const n, rounds = 4, 25
	err := Run(Config{NRanks: n}, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, 8))
		me := r.ID()
		for round := 0; round < rounds; round++ {
			if me%2 == 0 {
				origin := (me + 1) % n
				w.Post([]int{origin})
				w.Wait()
				var got [1]int64
				GetInt64s(got[:], w.Buffer())
				want := int64(origin*1000 + round)
				if got[0] != want {
					r.Abort(fmt.Errorf("round %d: exposed value %d, want %d", round, got[0], want))
				}
			} else {
				target := (me + n - 1) % n
				w.Start([]int{target})
				w.Put(Int64Bytes([]int64{int64(me*1000 + round)}), target, 0)
				w.Complete()
			}
		}
		w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRMANotifyWait runs a put+notify producer-consumer pipeline: the
// consumer only ever observes fully written round values, and the ack slot
// throttles the producer so no round is overwritten early.
func TestRMANotifyWait(t *testing.T) {
	const rounds = 50
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, 8))
		if r.ID() == 0 {
			for round := 0; round < rounds; round++ {
				w.Put(Int64Bytes([]int64{int64(round)}), 1, 0)
				w.Notify(1, 0) // data ready
				w.NotifyWait(1, 1)
			}
		} else {
			for round := 0; round < rounds; round++ {
				w.NotifyWait(0, 1)
				var got [1]int64
				GetInt64s(got[:], w.Buffer())
				if got[0] != int64(round) {
					r.Abort(fmt.Errorf("round %d: consumed %d", round, got[0]))
				}
				w.Notify(0, 1) // ack: safe to overwrite
			}
		}
		w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRMARputRgetWaitall checks the nonblocking variants complete through
// Waitall — including interspersed nil requests, the MPI_REQUEST_NULL
// analogue (regression: Waitall used to panic on nil entries).
func TestRMARputRgetWaitall(t *testing.T) {
	const sz = 1024
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		w := c.WinCreate(make([]byte, sz))
		w.Fence()
		if r.ID() == 0 {
			q1 := w.Rput(bytes.Repeat([]byte{7}, sz/2), 1, 0)
			q2 := w.Rput(bytes.Repeat([]byte{9}, sz/2), 1, sz/2)
			c.Waitall(nil, q1, nil, q2, nil)
		}
		w.Fence()
		if r.ID() == 1 {
			if w.Buffer()[0] != 7 || w.Buffer()[sz-1] != 9 {
				r.Abort(fmt.Errorf("rput payloads missing: %d %d", w.Buffer()[0], w.Buffer()[sz-1]))
			}
			got := make([]byte, sz/2)
			q := w.Rget(got, 0, 0)
			if c.Wait(q) != sz/2 {
				r.Abort(fmt.Errorf("rget length mismatch"))
			}
		}
		w.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRMARemotePutGet moves windowed data across the modeled network (one
// rank per node): remote Put, Get and Accumulate must all round-trip, and
// the frames must be visible in the remote-packet counter.
func TestRMARemotePutGet(t *testing.T) {
	const sz = 512
	cfg := twoNodeCfg()
	cfg.Metrics = NewMetrics()
	err := Run(cfg, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, sz))
		w.Fence()
		if r.ID() == 0 {
			w.Put(bytes.Repeat([]byte{0x5A}, sz), 1, 0)
			w.Accumulate(Int64Bytes([]int64{41}), 1, 0, Sum, Int64)
		}
		w.Fence()
		if r.ID() == 1 {
			var v [1]int64
			GetInt64s(v[:], w.Buffer()[:8])
			// 8 bytes of 0x5A as int64, plus 41 accumulated on top.
			var base [1]int64
			GetInt64s(base[:], bytes.Repeat([]byte{0x5A}, 8))
			if v[0] != base[0]+41 {
				r.Abort(fmt.Errorf("accumulated value %d, want %d", v[0], base[0]+41))
			}
			if w.Buffer()[sz-1] != 0x5A {
				r.Abort(fmt.Errorf("tail of remote put missing"))
			}
			got := make([]byte, sz)
			w.Get(got, 0, 0) // remote Get from rank 0's (zeroed) window
			for _, b := range got {
				if b != 0 {
					r.Abort(fmt.Errorf("remote get returned dirty bytes"))
				}
			}
		}
		w.Fence()
		w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	var packets int64
	for _, s := range cfg.Metrics.Snapshot().Counters {
		if s.Name == "pure_rma_remote_packets_total" {
			packets = s.Value
		}
	}
	if packets == 0 {
		t.Fatal("cross-node RMA recorded zero remote packets")
	}
}

// TestRMARemoteProgressWhileBlocked pins the SSW-progress guarantee: rank 1
// blocks in a receive that only completes after rank 0's remote Put has
// been applied, so the Put must be applied by rank 1's progress hook while
// it is blocked — not by an RMA call it never makes.
func TestRMARemoteProgressWhileBlocked(t *testing.T) {
	err := Run(twoNodeCfg(), func(r *Rank) {
		c := r.World()
		w := c.WinCreate(make([]byte, 8))
		w.Fence()
		if r.ID() == 0 {
			// Put remotely, wait for target-side application, then release
			// rank 1 from its blocking receive.
			c.Wait(w.Rput(Int64Bytes([]int64{77}), 1, 0))
			c.Send(make([]byte, 1), 1, 0)
		} else {
			c.Recv(make([]byte, 1), 0, 0)
			var got [1]int64
			GetInt64s(got[:], w.Buffer())
			if got[0] != 77 {
				r.Abort(fmt.Errorf("put not applied before release message: %d", got[0]))
			}
		}
		w.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosRMARemotePutLossy drives remote Put/Accumulate traffic over a
// lossy, duplicating, reordering wire across several seeds: the reliable
// link layer must deliver every frame exactly once (exact final sums), and
// recovery must be visible in the retransmit counters.
func TestChaosRMARemotePutLossy(t *testing.T) {
	const rounds = 30
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := twoNodeCfg()
			cfg.Metrics = NewMetrics()
			cfg.Net.Faults = Faults{
				Seed: seed, DropProb: 0.20, DupProb: 0.10, ReorderProb: 0.10,
				RetryBackoffNs: 20_000,
			}
			err := Run(cfg, func(r *Rank) {
				w := r.World().WinCreate(make([]byte, 16))
				w.Fence()
				if r.ID() == 0 {
					for i := 1; i <= rounds; i++ {
						w.Put(Int64Bytes([]int64{int64(i)}), 1, 0)
						w.Accumulate(Int64Bytes([]int64{int64(i)}), 1, 8, Sum, Int64)
					}
				}
				w.Fence()
				if r.ID() == 1 {
					var got [2]int64
					GetInt64s(got[:], w.Buffer())
					if got[0] != rounds {
						r.Abort(fmt.Errorf("last put = %d, want %d", got[0], rounds))
					}
					if got[1] != rounds*(rounds+1)/2 {
						r.Abort(fmt.Errorf("accumulated sum = %d, want %d (lost or duplicated frame)", got[1], rounds*(rounds+1)/2))
					}
				}
				w.Fence()
				// PSCW epochs over the same lossy wire: each round's put
				// must be ordered inside its Post/Wait exposure.
				for round := 0; round < 10; round++ {
					if r.ID() == 1 {
						w.Post([]int{0})
						w.Wait()
						var got [1]int64
						GetInt64s(got[:], w.Buffer())
						if got[0] != int64(round) {
							r.Abort(fmt.Errorf("pscw round %d: exposed %d", round, got[0]))
						}
					} else {
						w.Start([]int{1})
						w.Put(Int64Bytes([]int64{int64(round)}), 1, 0)
						w.Complete()
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			c := map[string]int64{}
			for _, s := range cfg.Metrics.Snapshot().Counters {
				c[s.Name] = s.Value
			}
			if c["pure_net_drops_injected_total"] > 0 && c["pure_net_retransmits_total"] == 0 {
				t.Errorf("seed %d: %d drops injected but zero retransmits", seed, c["pure_net_drops_injected_total"])
			}
			if c["pure_rma_remote_packets_total"] == 0 {
				t.Errorf("seed %d: no remote RMA packets recorded", seed)
			}
		})
	}
}

// TestRMAStatsAndMetricsAgree cross-checks the per-rank stats harvest
// against the metrics registry for every RMA counter.
func TestRMAStatsAndMetricsAgree(t *testing.T) {
	met := NewMetrics()
	rep, err := RunWithReport(Config{NRanks: 2, Metrics: met}, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, 64))
		w.Fence()
		if r.ID() == 0 {
			w.Put(make([]byte, 32), 1, 0)
			w.Accumulate(Int64Bytes([]int64{1}), 1, 32, Sum, Int64)
			got := make([]byte, 16)
			w.Get(got, 1, 0)
			w.Notify(1, 0)
		} else {
			w.NotifyWait(0, 1)
		}
		w.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
	c := map[string]int64{}
	for _, s := range met.Snapshot().Counters {
		c[s.Name] = s.Value
	}
	for name, want := range map[string]int64{
		"pure_rma_puts_total":        rep.Total.RmaPuts,
		"pure_rma_gets_total":        rep.Total.RmaGets,
		"pure_rma_accumulates_total": rep.Total.RmaAccumulates,
		"pure_rma_fences_total":      rep.Total.RmaFences,
		"pure_rma_notifies_total":    rep.Total.RmaNotifies,
	} {
		if c[name] != want {
			t.Errorf("%s = %d, stats say %d", name, c[name], want)
		}
	}
	if rep.Total.RmaPuts != 1 || rep.Total.RmaGets != 1 || rep.Total.RmaAccumulates != 1 ||
		rep.Total.RmaNotifies != 1 || rep.Total.RmaFences != 4 || rep.Total.RmaBytesPut != 40 {
		t.Errorf("unexpected stats totals: %+v", rep.Total)
	}
	// The metric covers all one-sided bytes (put 32 + acc 8 + get 16); the
	// RmaBytesPut stat covers only the write side (put 32 + acc 8).
	if c["pure_rma_bytes_total"] != 56 {
		t.Errorf("pure_rma_bytes_total = %d, want 56", c["pure_rma_bytes_total"])
	}
}

// TestWatchdogRMAHang arms the watchdog over a run where rank 1 waits for
// a notification nobody sends: the hang dump must name the RMA wait.
func TestWatchdogRMAHang(t *testing.T) {
	err := Run(Config{NRanks: 2, HangTimeout: 300 * time.Millisecond}, func(r *Rank) {
		w := r.World().WinCreate(make([]byte, 8))
		w.NotifyWait(0, 1) // never satisfied
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if re.Cause != CauseStall && re.Cause != CauseDeadlock {
		t.Fatalf("cause = %q, want a watchdog cause", re.Cause)
	}
	found := false
	for _, b := range re.Blocked {
		if b.Wait != nil && b.Wait.Op == "notify-wait" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hang dump has no RMA wait record: %+v", re.Blocked)
	}
	if !strings.Contains(err.Error(), "notify-wait") {
		t.Fatalf("diagnostic text missing the RMA wait:\n%v", err)
	}
}
