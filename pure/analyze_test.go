package pure_test

// External-package tests: they drive the real §2 stencil application through
// the comm backend (which package pure's internal tests cannot import) and
// check the trace-analytics and binary-dump surface end to end.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/comm"
	"repro/internal/apps/stencil"
	"repro/pure"
)

// runTracedStencil runs the 8-rank stencil under trace + metrics and returns
// the report.
func runTracedStencil(t *testing.T) pure.Report {
	t.Helper()
	const nranks = 8
	cfg := pure.Config{
		NRanks:  nranks,
		Trace:   pure.NewTrace(nranks, 0),
		Metrics: pure.NewMetrics(),
	}
	rep, err := comm.RunPureWithReport(cfg, func(b comm.Backend) {
		if _, err := stencil.Run(b, stencil.Params{ArrSize: 256, Iters: 10, WorkScale: 8, UseTask: true}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAnalyzeStencilTrace(t *testing.T) {
	rep := runTracedStencil(t)
	a := rep.Analyze()
	if a == nil {
		t.Fatal("Analyze returned nil on a traced run")
	}

	// Acceptance bar: >= 99% of sends pair with their receives.  On a clean
	// single-process trace every send completes, so this should be 100%.
	if got := a.MatchRate(); got < 0.99 {
		t.Fatalf("match rate = %.4f, want >= 0.99 (unmatched: %+v)", got, a.Unmatched)
	}
	if a.TotalMatched == 0 {
		t.Fatal("no matched messages in a stencil trace")
	}
	// The 8 B edge exchanges ride the eager path.
	var eager bool
	for _, ps := range a.Paths {
		if ps.Path == "eager" && ps.Matched > 0 && ps.Latency.N > 0 {
			eager = true
		}
	}
	if !eager {
		t.Fatalf("no matched eager traffic: %+v", a.Paths)
	}
	// The closing checksum allreduce must show up as at least one collective
	// round spanning all 8 ranks.
	if a.Collectives.Calls == 0 || len(a.Collectives.Rounds) == 0 {
		t.Fatalf("no collective rounds: %+v", a.Collectives)
	}
	full := false
	for _, rs := range a.Collectives.Rounds {
		if rs.Ranks == 8 {
			full = true
		}
	}
	if !full {
		t.Fatalf("no round with all 8 ranks: %+v", a.Collectives.Rounds)
	}
	// Neighbour exchanges mean every rank both sends and receives.
	if len(a.Ranks) != 8 {
		t.Fatalf("rank breakdowns = %d, want 8", len(a.Ranks))
	}
	for _, rb := range a.Ranks {
		if rb.Sends == 0 || rb.Recvs == 0 {
			t.Fatalf("rank %d has sends=%d recvs=%d", rb.Rank, rb.Sends, rb.Recvs)
		}
		if rb.TasksExecuted == 0 {
			t.Fatalf("rank %d executed no tasks", rb.Rank)
		}
	}
	if a.Critical.LengthNs <= 0 {
		t.Fatalf("critical path = %+v", a.Critical)
	}

	var text bytes.Buffer
	if err := a.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "matched messages: ") {
		t.Fatalf("report missing matched-messages line:\n%s", text.String())
	}
}

// TestStencilMetricsRoundTrip round-trips the full runtime metric set of a
// real stencil run through the Prometheus text format.
func TestStencilMetricsRoundTrip(t *testing.T) {
	rep := runTracedStencil(t)
	want := rep.Metrics.Snapshot()
	if len(want.Counters) == 0 || len(want.Histograms) == 0 {
		t.Fatalf("stencil run registered no metrics: %+v", want)
	}
	var buf bytes.Buffer
	if err := want.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := pure.ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("full metric set does not round-trip:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestTraceBinDumpMatchesLiveAnalysis(t *testing.T) {
	rep := runTracedStencil(t)
	var bin bytes.Buffer
	if err := rep.WriteTraceBin(&bin); err != nil {
		t.Fatal(err)
	}
	d, err := pure.ReadTraceBin(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if d.NRanks != 8 || len(d.Events) != len(rep.Timeline()) {
		t.Fatalf("dump meta: nranks=%d events=%d, want 8/%d", d.NRanks, len(d.Events), len(rep.Timeline()))
	}
	live := rep.Analyze()
	offline := pure.AnalyzeDump(d)
	if offline.TotalMatched != live.TotalMatched || offline.TotalUnmatched != live.TotalUnmatched {
		t.Fatalf("offline analysis diverges: %d/%d vs live %d/%d",
			offline.TotalMatched, offline.TotalUnmatched, live.TotalMatched, live.TotalUnmatched)
	}
	if offline.MatchRate() < 0.99 {
		t.Fatalf("offline match rate = %.4f", offline.MatchRate())
	}
}

func TestAnalyzeUntracedIsNil(t *testing.T) {
	rep, err := pure.RunWithReport(pure.Config{NRanks: 2}, func(r *pure.Rank) { r.World().Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analyze() != nil {
		t.Error("Analyze on untraced run should be nil")
	}
	var buf bytes.Buffer
	if err := rep.WriteTraceBin(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("WriteTraceBin on untraced run wrote %d bytes, err %v", buf.Len(), err)
	}
}

// TestMonitorAddrThroughPureConfig checks the public MonitorAddr plumbing.
func TestMonitorAddrThroughPureConfig(t *testing.T) {
	err := pure.Run(pure.Config{NRanks: 2, MonitorAddr: "127.0.0.1:0"}, func(r *pure.Rank) {
		if r.MonitorAddr() == "" {
			t.Error("MonitorAddr empty with monitor configured")
		}
		r.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
