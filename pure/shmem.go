package pure

import (
	"repro/internal/core"
)

// The PGAS layer (shmem): an OpenSHMEM-style symmetric heap over RMA
// windows, with addressed operations by (rank, offset) and actor-style
// mailboxes on top.  See docs/SHMEM.md for the full semantics; the short
// version:
//
//   - ShmemCreate collectively carves an identically sized, 8-aligned
//     region per rank; Malloc/Free run a deterministic symmetric allocator,
//     so the k-th Malloc returns the same offset on every rank and one
//     offset names the "same" object everywhere.
//   - Put/Get/AtomicAdd/AtomicFetchAdd/AtomicCAS/AtomicStore/AtomicLoad
//     address (target rank, heap offset).  Intra-node they are direct
//     copies and hardware atomics on the shared region (zero allocations);
//     inter-node they ride the RMA frame transport and apply through the
//     same atomics on the target, so updates from every origin compose.
//   - Quiet completes the caller's outstanding operations (applied at
//     their targets, not merely delivered); Fence states per-target
//     ordering (structural in this runtime); Barrier is Quiet plus a
//     communicator barrier.
//   - Mailboxes are bounded MPSC rings in the owner's region: any rank
//     Sends, the owner Polls/Recvs, and Select waits on several mailboxes
//     at once, parked in the work-stealing SSW loop.

// Shmem is one rank's handle on a symmetric heap (the PE-local view).
type Shmem struct {
	s *core.Shm
}

// ShmemCreate collectively creates a symmetric heap of size bytes over the
// communicator.  Every member must call it in the same order with the same
// size; maxAllocs bounds lifetime Malloc calls (0 = a generous default).
func (c *Comm) ShmemCreate(size int64, maxAllocs int) *Shmem {
	return &Shmem{s: c.c.ShmemCreate(size, maxAllocs)}
}

// Rank returns the caller's rank within the heap's communicator.
func (s *Shmem) Rank() int { return s.s.Comm().Rank() }

// Size returns the heap's member count.
func (s *Shmem) Size() int { return s.s.Comm().Size() }

// HeapBytes returns the symmetric region size in bytes.
func (s *Shmem) HeapBytes() int64 { return s.s.Size() }

// Local returns the calling rank's own symmetric region (reads of cells
// other ranks update concurrently must use AtomicLoad).
func (s *Shmem) Local() []byte { return s.s.Local() }

// Malloc returns the offset of a fresh n-byte symmetric allocation.
// Symmetric discipline: every member calls Malloc/Free in the same order
// and therefore computes the same offset (validated by a shared publish
// table; divergence panics).  No implied barrier.
func (s *Shmem) Malloc(n int64) int64 { return s.s.Malloc(n) }

// Free releases the symmetric allocation at off (same ordering obligation
// as Malloc).
func (s *Shmem) Free(off int64) { s.s.Free(off) }

// Put copies data into target's region at off (fire-and-forget inter-node;
// complete with Quiet/Barrier).
func (s *Shmem) Put(target int, off int64, data []byte) { s.s.Put(target, off, data) }

// Get copies len(dest) bytes from target's region at off, blocking until
// dest is filled.
func (s *Shmem) Get(target int, off int64, dest []byte) { s.s.Get(target, off, dest) }

// AtomicAdd folds delta into the 8-byte cell at (target, off); updates
// from any rank are never lost.
func (s *Shmem) AtomicAdd(target int, off, delta int64) { s.s.AtomicAdd(target, off, delta) }

// AtomicFetchAdd folds delta into the cell at (target, off) and returns
// the value it held immediately before.
func (s *Shmem) AtomicFetchAdd(target int, off, delta int64) int64 {
	return s.s.AtomicFetchAdd(target, off, delta)
}

// AtomicCAS compares-and-swaps the cell at (target, off), returning the
// value it held immediately before (the swap happened iff that equals old).
func (s *Shmem) AtomicCAS(target int, off, old, new int64) int64 {
	return s.s.AtomicCAS(target, off, old, new)
}

// AtomicStore publishes v into the cell at (target, off).
func (s *Shmem) AtomicStore(target int, off, v int64) { s.s.AtomicStore(target, off, v) }

// AtomicLoad returns the cell at (target, off), serialized against every
// other cell operation.
func (s *Shmem) AtomicLoad(target int, off int64) int64 { return s.s.AtomicLoad(target, off) }

// Quiet blocks until every outstanding operation this rank issued has been
// applied at its target.
func (s *Shmem) Quiet() { s.s.Quiet() }

// Fence orders this rank's operations toward each target (structural in
// this runtime; see docs/SHMEM.md).
func (s *Shmem) Fence() { s.s.Fence() }

// Barrier is Quiet plus a communicator barrier: on return, every member's
// prior operations are applied everywhere.
func (s *Shmem) Barrier() { s.s.Barrier() }

// FreeHeap collectively releases the heap.
func (s *Shmem) FreeHeap() { s.s.FreeHeap() }

// Mailbox is an actor-style bounded queue owned by one rank: any member
// Sends, only the owner Polls/Recvs.  Per-sender FIFO.
type Mailbox struct {
	m *core.Mailbox
}

// NewMailbox collectively creates a mailbox owned by comm rank owner with
// capacity cap messages (at least 2) of at most slotBytes bytes (a
// positive multiple of 8).  Allocates from the symmetric heap, so the same
// call-ordering obligation as Malloc applies.
func (s *Shmem) NewMailbox(owner, cap, slotBytes int) *Mailbox {
	return &Mailbox{m: s.s.NewMailbox(owner, cap, slotBytes)}
}

// Owner returns the consuming rank.
func (m *Mailbox) Owner() int { return m.m.Owner() }

// Cap returns the ring capacity in messages.
func (m *Mailbox) Cap() int { return m.m.Cap() }

// SlotBytes returns the per-message payload capacity.
func (m *Mailbox) SlotBytes() int { return m.m.SlotBytes() }

// Notifications returns the mailbox's cumulative notify-counter value (a
// wake hint that can trail the ring stamps, which are authoritative).
func (m *Mailbox) Notifications() uint64 { return m.m.Notifications() }

// TrySend attempts to deliver msg without blocking; false means full.
func (m *Mailbox) TrySend(msg []byte) bool { return m.m.TrySend(msg) }

// Send delivers msg, blocking while the ring is full.
func (m *Mailbox) Send(msg []byte) { m.m.Send(msg) }

// Poll attempts to consume one message into dst (at least SlotBytes long)
// without blocking.  Owner only.
func (m *Mailbox) Poll(dst []byte) (int, bool) { return m.m.Poll(dst) }

// Recv consumes one message into dst, blocking until one arrives.  Owner
// only; the wait steals work like every runtime wait.
func (m *Mailbox) Recv(dst []byte) int { return m.m.Recv(dst) }

// Select blocks until one of the caller-owned mailboxes has a message and
// returns its index (lowest ready index wins); it does not consume.
func (s *Shmem) Select(mboxes ...*Mailbox) int {
	inner := make([]*core.Mailbox, len(mboxes))
	for i, m := range mboxes {
		inner[i] = m.m
	}
	return s.s.Select(inner...)
}
