package pure

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTracedRunEndToEnd drives every instrumented protocol path under a
// trace + metrics config and checks the exports round-trip.
func TestTracedRunEndToEnd(t *testing.T) {
	trace := NewTrace(4, 0)
	met := NewMetrics()
	rep, err := RunWithReport(Config{NRanks: 4, Trace: trace, Metrics: met}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(make([]byte, 64), 1, 0)     // eager
			c.Send(make([]byte, 16<<10), 1, 0) // rendezvous
		} else if r.ID() == 1 {
			c.Recv(make([]byte, 64), 0, 0)
			c.Recv(make([]byte, 16<<10), 0, 0)
		}
		c.Barrier()
		out := make([]byte, 8)
		c.Allreduce(Int64Bytes([]int64{int64(r.ID())}), out, Sum, Int64)
		if r.ID() == 2 {
			task := r.NewTask(8, func(_, _ int64, _ any) {})
			task.Execute(nil)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Timeline: non-empty, sorted by start time, expected kinds present.
	tl := rep.Timeline()
	if len(tl) == 0 {
		t.Fatal("traced run produced no events")
	}
	if !sort.SliceIsSorted(tl, func(a, b int) bool { return tl[a].TS < tl[b].TS || (tl[a].TS == tl[b].TS && tl[a].Rank < tl[b].Rank) }) {
		t.Error("timeline not sorted by start time")
	}
	kinds := map[EventKind]int{}
	for _, e := range tl {
		kinds[e.Kind]++
	}
	for _, k := range []EventKind{
		obs.KSendEager, obs.KRecvEager, obs.KSendRendezvous, obs.KRecvRendezvous,
		obs.KRendezvousHandoff, obs.KBarrier, obs.KAllreduce, obs.KTaskExecute,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	if kinds[obs.KBarrier] != 8 {
		t.Errorf("barrier events = %d, want 8 (4 ranks x 2)", kinds[obs.KBarrier])
	}

	// The send the payload took the rendezvous path for must have produced
	// exactly one handoff, stamped by the sender.
	if kinds[obs.KRendezvousHandoff] != 1 {
		t.Errorf("handoff events = %d, want 1", kinds[obs.KRendezvousHandoff])
	}

	// Metrics agree with the per-rank counter report.
	snap := met.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["pure_sends_eager_total"] != rep.Total.SendsEager {
		t.Errorf("eager sends: metric %d, stats %d", counters["pure_sends_eager_total"], rep.Total.SendsEager)
	}
	if counters["pure_sends_rendezvous_total"] != rep.Total.SendsRendezvous {
		t.Errorf("rvz sends: metric %d, stats %d", counters["pure_sends_rendezvous_total"], rep.Total.SendsRendezvous)
	}
	if counters["pure_bytes_received_total"] != rep.Total.BytesReceived {
		t.Errorf("bytes received: metric %d, stats %d", counters["pure_bytes_received_total"], rep.Total.BytesReceived)
	}
	if counters["pure_barriers_total"] != rep.Total.Barriers {
		t.Errorf("barriers: metric %d, stats %d", counters["pure_barriers_total"], rep.Total.Barriers)
	}
	if counters["pure_tasks_executed_total"] != 1 {
		t.Errorf("tasks metric = %d", counters["pure_tasks_executed_total"])
	}

	// Prometheus round-trip.
	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePrometheus(strings.NewReader(prom.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, prom.String())
	}
	if len(back.Counters) != len(snap.Counters) {
		t.Errorf("round-trip counters: %d vs %d", len(back.Counters), len(snap.Counters))
	}

	// Chrome trace: valid JSON with thread metadata plus the recorded events.
	var ct bytes.Buffer
	if err := rep.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ct.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(tl)+4 { // 4 thread_name metadata records
		t.Errorf("chrome trace has %d records, want %d", len(doc.TraceEvents), len(tl)+4)
	}
}

// TestUntracedReportExportsAreNoops checks the nil-trace conveniences.
func TestUntracedReportExportsAreNoops(t *testing.T) {
	rep, err := RunWithReport(Config{NRanks: 2}, func(r *Rank) { r.World().Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeline() != nil {
		t.Error("Timeline on untraced run should be nil")
	}
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("WriteChromeTrace on untraced run wrote %d bytes, err %v", buf.Len(), err)
	}
}

// TestRankMetricsAccessor checks ranks can reach (and extend) the registry
// mid-run.
func TestRankMetricsAccessor(t *testing.T) {
	met := NewMetrics()
	err := Run(Config{NRanks: 2, Metrics: met}, func(r *Rank) {
		if r.Metrics() != met {
			t.Error("Rank.Metrics should return the configured registry")
		}
		r.Metrics().Counter("app_iterations_total").Inc()
		r.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot()
	for _, c := range snap.Counters {
		if c.Name == "app_iterations_total" {
			if c.Value != 2 {
				t.Errorf("app counter = %d, want 2", c.Value)
			}
			return
		}
	}
	t.Error("app_iterations_total missing from snapshot")
}

// TestInvalidConfigErrors verifies Run reports configuration mistakes as
// descriptive errors instead of panicking.
func TestInvalidConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero ranks", Config{}, "NRanks"},
		{"negative small-msg max", Config{NRanks: 2, SmallMsgMax: -1}, "SmallMsgMax"},
		{"negative pbq slots", Config{NRanks: 2, PBQSlots: -4}, "PBQSlots"},
		{"negative spin budget", Config{NRanks: 2, SpinBudget: -1}, "SpinBudget"},
		{"seats without custom policy", Config{NRanks: 2, Seats: []Seat{{}, {}}}, "Custom"},
		{"trace size mismatch", Config{NRanks: 2, Trace: NewTrace(3, 0)}, "Trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(tc.cfg, func(*Rank) { t.Error("rank ran under invalid config") })
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
