package pure

import (
	"repro/internal/core"
	"repro/internal/rma"
)

// One-sided communication (RMA): shared-memory windows with Put / Get /
// Accumulate and lock-free epoch synchronization.  See docs/RMA.md for the
// full semantics; the short version:
//
//   - WinCreate collectively exposes a buffer per rank.  Intra-node Put and
//     Get are single direct copies into/out of the peer's exposed memory;
//     inter-node operations ride the modeled network and are applied by the
//     target's runtime.
//   - Operations become visible only through synchronization: Fence epochs,
//     Post/Start/Complete/Wait (PSCW) for neighbor-scoped epochs, or
//     Notify/NotifyWait counters for producer-consumer patterns.
//   - Unsynchronized concurrent access to the same window bytes is an
//     application data race, exactly as in MPI; Accumulate is the exception
//     (serialized per target).

// NotifySlots is the number of independent notification counters each rank
// exposes per window.
const NotifySlots = rma.NotifySlots

// Window is a one-sided communication window (the analogue of MPI_Win).
// A Window handle belongs to the rank that created it.
type Window struct {
	w *core.Win
}

// WinCreate collectively creates a window over the communicator, exposing
// buf as the calling rank's window memory (sizes may differ per rank; nil
// exposes nothing).  Every member must call WinCreate in the same order.
func (c *Comm) WinCreate(buf []byte) *Window { return &Window{w: c.c.WinCreate(buf)} }

// Rank returns the caller's rank within the window's communicator.
func (w *Window) Rank() int { return w.w.Comm().Rank() }

// Size returns the window's member count.
func (w *Window) Size() int { return w.w.Size() }

// Len returns the byte length of target's exposed buffer.
func (w *Window) Len(target int) int { return w.w.Len(target) }

// Buffer returns the calling rank's own exposed buffer.
func (w *Window) Buffer() []byte { return w.w.Buffer() }

// Put copies data into target's window at byte offset off.  Intra-node
// this is one direct copy into the target's exposed memory; the transfer
// becomes visible to the target at the next synchronization.
func (w *Window) Put(data []byte, target, off int) { w.w.Put(data, target, off) }

// Get copies len(dest) bytes from target's window at off into dest,
// blocking until dest is filled.
func (w *Window) Get(dest []byte, target, off int) { w.w.Get(dest, target, off) }

// Rput is the nonblocking Put; complete the request with Wait/Waitall (or
// implicitly via Fence/Complete).  Completion means the data has been
// applied at the target, so data may be reused immediately after.
func (w *Window) Rput(data []byte, target, off int) *Request { return w.w.Rput(data, target, off) }

// Rget is the nonblocking Get; dest is filled when the request completes.
func (w *Window) Rget(dest []byte, target, off int) *Request { return w.w.Rget(dest, target, off) }

// Accumulate folds data into target's window at off with op over dt,
// serialized against every other Accumulate targeting the same rank.
func (w *Window) Accumulate(data []byte, target, off int, op Op, dt DType) {
	w.w.Accumulate(data, target, off, op, dt)
}

// Fence closes the current epoch and opens the next: after every member's
// Fence returns, all previous-epoch operations are visible everywhere.
// Collective over the window.
func (w *Window) Fence() { w.w.Fence() }

// Post opens an exposure epoch toward origins (PSCW target side); close it
// with Wait.
func (w *Window) Post(origins []int) { w.w.Post(origins) }

// Start opens an access epoch toward targets, blocking until each has
// Posted (PSCW origin side); close it with Complete.
func (w *Window) Start(targets []int) { w.w.Start(targets) }

// Complete closes the access epoch opened by Start, completing this rank's
// operations at every epoch target.
func (w *Window) Complete() { w.w.Complete() }

// Wait closes the exposure epoch opened by Post, blocking until every
// named origin has called Complete.
func (w *Window) Wait() { w.w.Wait() }

// Notify increments target's notification counter for slot, ordered after
// this rank's earlier operations toward that target: a consumer that
// observes the count also observes the data put before the notify.
func (w *Window) Notify(target, slot int) { w.w.Notify(target, slot) }

// NotifyWait blocks until the caller's notification counter for slot has
// grown by count beyond what previous NotifyWait calls consumed.
func (w *Window) NotifyWait(slot, count int) { w.w.NotifyWait(slot, count) }

// Free collectively releases the window.
func (w *Window) Free() { w.w.Free() }
