package pure

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

func TestQuickstartFlow(t *testing.T) {
	err := Run(Config{NRanks: 4}, func(r *Rank) {
		c := r.World()
		// Ring-pass a token.
		token := []byte{byte(r.ID())}
		next := (r.ID() + 1) % r.NRanks()
		prev := (r.ID() + r.NRanks() - 1) % r.NRanks()
		if r.ID() == 0 {
			c.Send(token, next, 0)
			c.Recv(token, prev, 0)
			if token[0] != byte(prev) {
				t.Errorf("token = %d, want %d", token[0], prev)
			}
		} else {
			got := make([]byte, 1)
			c.Recv(got, prev, 0)
			c.Send([]byte{byte(r.ID())}, next, 0)
		}
		// Typed allreduce.
		sum := c.AllreduceFloat64(float64(r.ID()), Sum)
		if sum != 6 {
			t.Errorf("sum = %v, want 6", sum)
		}
		maxv := c.AllreduceFloat64(float64(r.ID()), Max)
		if maxv != 3 {
			t.Errorf("max = %v", maxv)
		}
		n := c.AllreduceInt64(1, Sum)
		if n != 4 {
			t.Errorf("count = %d", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedHelpersRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		b := Float64Bytes(vals)
		out := make([]float64, len(vals))
		GetFloat64s(out, b)
		for i := range vals {
			if out[i] != vals[i] && !(math.IsNaN(out[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(vals []int64) bool {
		b := Int64Bytes(vals)
		out := make([]int64, len(vals))
		GetInt64s(out, b)
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvFloat64s(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.SendFloat64s([]float64{1.5, 2.5, 3.5}, 1, 9)
		} else {
			got := make([]float64, 3)
			c.RecvFloat64s(got, 0, 9)
			if got[0] != 1.5 || got[2] != 3.5 {
				t.Errorf("got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorAllreduceAndBcast(t *testing.T) {
	err := Run(Config{NRanks: 3}, func(r *Rank) {
		c := r.World()
		in := []float64{float64(r.ID()), 10}
		out := make([]float64, 2)
		c.AllreduceFloat64s(in, out, Sum)
		if out[0] != 3 || out[1] != 30 {
			t.Errorf("allreduce = %v", out)
		}
		vals := []float64{0, 0}
		if r.ID() == 1 {
			vals = []float64{7, 8}
		}
		c.BcastFloat64s(vals, 1)
		if vals[0] != 7 || vals[1] != 8 {
			t.Errorf("bcast = %v", vals)
		}
		if got := c.BcastInt64(int64(r.ID()*100), 2); got != 200 {
			t.Errorf("bcast int = %d", got)
		}
		root := make([]float64, 1)
		c.ReduceFloat64s([]float64{2}, root, 0, Prod)
		if r.ID() == 0 && root[0] != 8 {
			t.Errorf("reduce prod = %v", root[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTaskFromPublicAPI(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			data := make([]float64, 512)
			task := r.NewTask(16, func(start, end int64, _ any) {
				lo, hi := int64(0), int64(0)
				_ = lo
				_ = hi
				for c := start; c < end; c++ {
					l, h := alignedRange(512, c, 16)
					for i := l; i < h; i++ {
						data[i] = float64(i) * 2
					}
				}
			})
			stats := task.Execute(nil)
			if stats.OwnerChunks+stats.StolenChunks != 16 {
				t.Errorf("stats = %+v", stats)
			}
			for i := range data {
				if data[i] != float64(i)*2 {
					t.Fatalf("elem %d = %v", i, data[i])
				}
			}
		}
		r.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// alignedRange mirrors Task.AlignedIdxRange for a single chunk (test helper).
func alignedRange(n, chunk, total int64) (int64, int64) {
	perLine := int64(8)
	lines := (n + perLine - 1) / perLine
	per := lines / total
	extra := lines % total
	lineAt := func(c int64) int64 { return c*per + minI(c, extra) }
	lo := lineAt(chunk) * perLine
	hi := lineAt(chunk+1) * perLine
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestTaskAlignedIdxRangeAccessor(t *testing.T) {
	err := Run(Config{NRanks: 1}, func(r *Rank) {
		task := r.NewTask(4, func(_, _ int64, _ any) {})
		lo, hi := task.AlignedIdxRange(100, 8, 0, 4)
		if lo != 0 || hi != 100 {
			t.Errorf("full range = [%d,%d)", lo, hi)
		}
		if task.Chunks() != 4 {
			t.Errorf("chunks = %d", task.Chunks())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiNodeFromPublicAPI(t *testing.T) {
	err := Run(Config{
		NRanks:       8,
		Spec:         CoriNode(2),
		RanksPerNode: 4,
		Net:          NetConfig{LatencyNs: 100, BytesPerNs: 10, TimeScale: 10},
	}, func(r *Rank) {
		c := r.World()
		if got := c.AllreduceFloat64(1, Sum); got != 8 {
			t.Errorf("allreduce = %v", got)
		}
		sub := c.Split(r.Node(), r.ID())
		if sub.Size() != 4 {
			t.Errorf("node comm size = %d", sub.Size())
		}
		if got := sub.AllreduceFloat64(1, Sum); got != 4 {
			t.Errorf("node allreduce = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		color := -1
		if r.ID() == 0 {
			color = 0
		}
		sub := r.World().Split(color, 0)
		if r.ID() == 0 && sub == nil {
			t.Error("rank 0 should be in the new comm")
		}
		if r.ID() == 1 && sub != nil {
			t.Error("rank 1 should get nil")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCustomPlacement(t *testing.T) {
	// Pin two ranks to different sockets of one Cori node.
	err := Run(Config{
		NRanks: 2,
		Spec:   CoriNode(1),
		Policy: CustomPlacement,
		Seats: []Seat{
			{Node: 0, Socket: 0, Core: 0, Thread: 0},
			{Node: 0, Socket: 1, Core: 0, Thread: 0},
		},
	}, func(r *Rank) {
		c := r.World()
		if got := c.AllreduceFloat64(1, Sum); got != 2 {
			t.Errorf("allreduce = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate seats must be rejected.
	err = Run(Config{
		NRanks: 2,
		Spec:   CoriNode(1),
		Policy: CustomPlacement,
		Seats:  []Seat{{}, {}},
	}, func(*Rank) {})
	if err == nil {
		t.Fatal("duplicate seats accepted")
	}
}

func TestTaskBodyPanicPropagates(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			task := r.NewTask(4, func(start, end int64, _ any) {
				panic("task body exploded")
			})
			task.Execute(nil)
		}
	})
	if err == nil {
		t.Fatal("task panic was swallowed")
	}
}

func TestRunWithReportCounters(t *testing.T) {
	rep, err := RunWithReport(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send(make([]byte, 100), 1, 0)    // eager
			c.Send(make([]byte, 32<<10), 1, 0) // rendezvous
		} else {
			buf := make([]byte, 100)
			c.Recv(buf, 0, 0)
			big := make([]byte, 32<<10)
			c.Recv(big, 0, 0)
		}
		c.Barrier()
		out := make([]byte, 8)
		c.Allreduce(Int64Bytes([]int64{1}), out, Sum, Int64)
		if r.ID() == 0 {
			task := r.NewTask(4, func(_, _ int64, _ any) {})
			task.Execute(nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Total
	if tot.SendsEager != 1 || tot.SendsRendezvous != 1 {
		t.Errorf("sends: eager=%d rvz=%d, want 1/1", tot.SendsEager, tot.SendsRendezvous)
	}
	if tot.RecvsEager != 1 || tot.RecvsRendezvous != 1 {
		t.Errorf("recvs: eager=%d rvz=%d, want 1/1", tot.RecvsEager, tot.RecvsRendezvous)
	}
	if tot.BytesSent != 100+32<<10 || tot.BytesReceived != 100+32<<10 {
		t.Errorf("bytes: sent=%d recv=%d", tot.BytesSent, tot.BytesReceived)
	}
	if tot.Barriers != 2 || tot.Allreduces != 2 {
		t.Errorf("collectives: barriers=%d allreduces=%d, want 2/2", tot.Barriers, tot.Allreduces)
	}
	if tot.TasksExecuted != 1 || tot.ChunksOwned+tot.ChunksStolen != 4 {
		t.Errorf("tasks: %d executed, %d+%d chunks", tot.TasksExecuted, tot.ChunksOwned, tot.ChunksStolen)
	}
	if rep.PerRank[0].Rank != 0 || rep.PerRank[1].Rank != 1 {
		t.Errorf("rank ids wrong: %d %d", rep.PerRank[0].Rank, rep.PerRank[1].Rank)
	}
	if rep.PerRank[1].Messages() != 0 || rep.PerRank[0].Messages() != 2 {
		t.Errorf("per-rank messages: %d %d", rep.PerRank[0].Messages(), rep.PerRank[1].Messages())
	}
}

func TestReportCountsRemoteSends(t *testing.T) {
	rep, err := RunWithReport(Config{
		NRanks:       2,
		Spec:         CoriNode(2),
		RanksPerNode: 1,
		Net:          NetConfig{LatencyNs: 50, TimeScale: 10},
	}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send([]byte{1}, 1, 0)
		} else {
			c.Recv(make([]byte, 1), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.SendsRemote != 1 || rep.Total.RecvsRemote != 1 {
		t.Errorf("remote counters: %d/%d", rep.Total.SendsRemote, rep.Total.RecvsRemote)
	}
}

func TestDeadlockDiagnosisFromPublicAPI(t *testing.T) {
	// A 4-rank receive ring with no senders: Run must return a *RunError
	// naming the wait-for cycle instead of hanging.
	const n = 4
	err := Run(Config{NRanks: n, HangTimeout: 150 * time.Millisecond}, func(r *Rank) {
		buf := make([]byte, 8)
		r.World().Recv(buf, (r.ID()+n-1)%n, 0)
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if re.Cause != CauseDeadlock {
		t.Fatalf("cause = %q, want %q", re.Cause, CauseDeadlock)
	}
	if len(re.Cycle) != n {
		t.Fatalf("cycle = %v, want all %d ranks", re.Cycle, n)
	}
	if !strings.Contains(err.Error(), "wait-for cycle") {
		t.Fatalf("error text missing cycle diagnosis:\n%v", err)
	}
}

func TestAbortFromPublicAPI(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			r.Abort(errors.New("bad input deck"))
		}
		r.World().Barrier()
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if re.Cause != CauseAbort || len(re.Failures) != 1 || re.Failures[0].Rank != 0 {
		t.Fatalf("RunError = %+v", re)
	}
}

func TestFaultInjectionFromPublicAPI(t *testing.T) {
	// Cross-node traffic over a 10%-lossy wire must still deliver exact
	// results via the runtime's ack/retransmit layer.
	cfg := Config{
		NRanks:       2,
		Spec:         Spec{Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
		RanksPerNode: 1,
		Net:          NetConfig{LatencyNs: 200, BytesPerNs: 10, TimeScale: 10},
		HangTimeout:  10 * time.Second,
		Metrics:      NewMetrics(),
	}
	cfg.Net.Faults = Faults{Seed: 11, DropProb: 0.10, RetryBackoffNs: 20_000}
	err := Run(cfg, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 16)
		for i := 0; i < 25; i++ {
			if r.ID() == 0 {
				buf[0] = byte(i)
				w.Send(buf, 1, 0)
			} else {
				w.Recv(buf, 0, 0)
				if buf[0] != byte(i) {
					r.Abort(fmt.Errorf("message %d corrupted or lost", i))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var retransmits int64
	for _, c := range cfg.Metrics.Snapshot().Counters {
		if c.Name == "pure_net_retransmits_total" {
			retransmits = c.Value
		}
	}
	if retransmits == 0 {
		t.Fatal("10% drops but zero retransmits recorded")
	}
}
