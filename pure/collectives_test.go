package pure

import (
	"bytes"
	"testing"
)

func TestGatherToEveryRoot(t *testing.T) {
	const n = 5
	err := Run(Config{NRanks: n}, func(r *Rank) {
		c := r.World()
		for root := 0; root < n; root++ {
			in := []byte{byte(r.ID()), byte(r.ID() + 100)}
			var out []byte
			if r.ID() == root {
				out = make([]byte, n*2)
			}
			c.Gather(in, out, root)
			if r.ID() == root {
				for cr := 0; cr < n; cr++ {
					if out[cr*2] != byte(cr) || out[cr*2+1] != byte(cr+100) {
						t.Errorf("root %d: slot %d = % x", root, cr, out[cr*2:cr*2+2])
					}
				}
			}
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 4
	err := Run(Config{NRanks: n}, func(r *Rank) {
		c := r.World()
		in := []byte{byte(10 + r.ID())}
		out := make([]byte, n)
		c.Allgather(in, out)
		if !bytes.Equal(out, []byte{10, 11, 12, 13}) {
			t.Errorf("rank %d: allgather = % x", r.ID(), out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	const n = 4
	err := Run(Config{NRanks: n}, func(r *Rank) {
		c := r.World()
		var in []byte
		if r.ID() == 2 {
			in = []byte{0, 0, 1, 1, 2, 2, 3, 3}
		}
		out := make([]byte, 2)
		c.Scatter(in, out, 2)
		if out[0] != byte(r.ID()) || out[1] != byte(r.ID()) {
			t.Errorf("rank %d: scatter = % x", r.ID(), out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterMultiNode(t *testing.T) {
	const n = 8
	err := Run(Config{
		NRanks:       n,
		Spec:         CoriNode(2),
		RanksPerNode: 4,
		Net:          NetConfig{LatencyNs: 100, BytesPerNs: 10, TimeScale: 10},
	}, func(r *Rank) {
		c := r.World()
		in := []byte{byte(r.ID())}
		out := make([]byte, n)
		c.Allgather(in, out)
		for i := 0; i < n; i++ {
			if out[i] != byte(i) {
				t.Errorf("rank %d: allgather[%d] = %d", r.ID(), i, out[i])
			}
		}
		back := make([]byte, 1)
		c.Scatter(out, back, 0)
		if back[0] != byte(r.ID()) {
			t.Errorf("rank %d: scatter-back = %d", r.ID(), back[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterValidation(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		c := r.World()
		mustPanic := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}
		mustPanic("short gather out", func() { c.Gather([]byte{1, 2}, make([]byte, 3), 0) })
		mustPanic("short scatter in", func() { c.Scatter(make([]byte, 3), make([]byte, 2), 0) })
		mustPanic("short allgather out", func() { c.Allgather(make([]byte, 4), make([]byte, 4)) })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRingNoDeadlock(t *testing.T) {
	// Every rank simultaneously exchanges with both ring neighbours — the
	// pattern that deadlocks naive blocking Send/Recv chains.
	const n = 6
	err := Run(Config{NRanks: n}, func(r *Rank) {
		c := r.World()
		next := (r.ID() + 1) % n
		prev := (r.ID() + n - 1) % n
		out := []byte{byte(r.ID())}
		in := make([]byte, 1)
		for i := 0; i < 50; i++ {
			got := c.Sendrecv(out, next, 5, in, prev, 5)
			if got != 1 || in[0] != byte(prev) {
				t.Errorf("rank %d iter %d: got %d bytes, value %d", r.ID(), i, got, in[0])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvLargePayloads(t *testing.T) {
	const size = 32 << 10
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		peer := 1 - r.ID()
		out := make([]byte, size)
		for i := range out {
			out[i] = byte(r.ID() + 1)
		}
		in := make([]byte, size)
		n := c.Sendrecv(out, peer, 0, in, peer, 0)
		if n != size || in[0] != byte(peer+1) || in[size-1] != byte(peer+1) {
			t.Errorf("rank %d: n=%d first=%d", r.ID(), n, in[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
