package pure

import (
	"repro/internal/codec"
	"repro/internal/core"
)

// Comm is a communicator handle: a group of ranks that can exchange
// point-to-point messages and execute collectives.  Semantics match MPI
// (see the package documentation for the messaging rules).
type Comm struct {
	c *Comm_
}

// Comm_ aliases the runtime communicator to keep the facade thin.
type Comm_ = core.Comm

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.c.Rank() }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.c.Size() }

// Send sends buf to dst with tag, blocking until buf is reusable.
func (c *Comm) Send(buf []byte, dst, tag int) { c.c.Send(buf, dst, tag) }

// Recv receives into buf from src with tag; returns the byte count.
func (c *Comm) Recv(buf []byte, src, tag int) int { return c.c.Recv(buf, src, tag) }

// Isend starts a nonblocking send of buf to dst.
func (c *Comm) Isend(buf []byte, dst, tag int) *Request { return c.c.Isend(buf, dst, tag) }

// Irecv starts a nonblocking receive into buf from src.
func (c *Comm) Irecv(buf []byte, src, tag int) *Request { return c.c.Irecv(buf, src, tag) }

// Wait blocks until req completes; returns the byte count for receives.
func (c *Comm) Wait(req *Request) int { return c.c.Wait(req) }

// Channel is a persistent point-to-point endpoint: the (peer, tag, comm)
// resolution, trace/metric handles, and request pool are bound once, so its
// Send/Recv fast paths are allocation-free for eager payloads and Isend/Irecv
// recycle pooled requests.  Hoist endpoints out of hot loops:
//
//	ping := c.SendChannel(peer, 0)
//	pong := c.RecvChannel(peer, 1)
//	for i := 0; i < iters; i++ {
//		ping.Send(buf)
//		pong.Recv(buf)
//	}
//
// A Channel belongs to the rank that created it and must not be shared.
type Channel = core.Channel

// PersistentOp is a prebound Start/Wait operation (the analogue of MPI's
// persistent requests, MPI_Send_init / MPI_Recv_init).
type PersistentOp = core.PersistentOp

// SendChannel returns the cached persistent send endpoint for (dst, tag);
// repeated calls with the same arguments return the identical endpoint.
func (c *Comm) SendChannel(dst, tag int) *Channel { return c.c.SendChannel(dst, tag) }

// RecvChannel returns the cached persistent receive endpoint for (src, tag).
func (c *Comm) RecvChannel(src, tag int) *Channel { return c.c.RecvChannel(src, tag) }

// SendInit creates a persistent send of buf to dst with tag (MPI_Send_init);
// post it with Start or Startall, complete it with its Wait.
func (c *Comm) SendInit(buf []byte, dst, tag int) *PersistentOp {
	return c.c.SendInit(buf, dst, tag)
}

// RecvInit creates a persistent receive into buf from src with tag
// (MPI_Recv_init).
func (c *Comm) RecvInit(buf []byte, src, tag int) *PersistentOp {
	return c.c.RecvInit(buf, src, tag)
}

// Startall posts every persistent operation (MPI_Startall), receives first.
func Startall(ops ...*PersistentOp) { core.Startall(ops...) }

// WaitallOps completes every persistent operation (MPI_Waitall over
// persistent requests).
func WaitallOps(ops ...*PersistentOp) { core.WaitallOps(ops...) }

// Waitall completes all requests.
func (c *Comm) Waitall(reqs ...*Request) { c.c.Waitall(reqs...) }

// Barrier blocks until every rank in the communicator has entered it.
func (c *Comm) Barrier() { c.c.Barrier() }

// Allreduce element-wise reduces in into out across all ranks (both are raw
// byte payloads of dt elements).
func (c *Comm) Allreduce(in, out []byte, op Op, dt DType) { c.c.Allreduce(in, out, op, dt) }

// Reduce reduces in to root's out (out may be nil elsewhere).
func (c *Comm) Reduce(in, out []byte, root int, op Op, dt DType) { c.c.Reduce(in, out, root, op, dt) }

// Bcast distributes root's buf to every rank.
func (c *Comm) Bcast(buf []byte, root int) { c.c.Bcast(buf, root) }

// Split partitions the communicator by color, ordering new ranks by (key,
// old rank); color < 0 opts out and returns nil.  Collective.
func (c *Comm) Split(color, key int) *Comm {
	sub := c.c.Split(color, key)
	if sub == nil {
		return nil
	}
	return &Comm{c: sub}
}

// ---- Typed convenience wrappers ----
//
// The transport layer moves raw bytes; these helpers marshal Go numeric
// slices through little-endian payloads, the fixed on-wire layout
// implemented once in internal/codec and re-exported here.  They allocate a
// scratch payload per call; performance-critical inner loops should marshal
// once and reuse byte buffers via the raw calls.

// Float64Bytes encodes vals into a fresh payload.
func Float64Bytes(vals []float64) []byte { return codec.Float64Bytes(vals) }

// PutFloat64s encodes vals into b, which must hold 8*len(vals) bytes.
func PutFloat64s(b []byte, vals []float64) { codec.PutFloat64s(b, vals) }

// GetFloat64s decodes len(vals) float64s from b into vals.
func GetFloat64s(vals []float64, b []byte) { codec.GetFloat64s(vals, b) }

// Int64Bytes encodes vals into a fresh payload.
func Int64Bytes(vals []int64) []byte { return codec.Int64Bytes(vals) }

// PutInt64s encodes vals into b, which must hold 8*len(vals) bytes.
func PutInt64s(b []byte, vals []int64) { codec.PutInt64s(b, vals) }

// GetInt64s decodes len(vals) int64s from b.
func GetInt64s(vals []int64, b []byte) { codec.GetInt64s(vals, b) }

// SendFloat64s sends vals to dst with tag.
func (c *Comm) SendFloat64s(vals []float64, dst, tag int) {
	c.Send(Float64Bytes(vals), dst, tag)
}

// RecvFloat64s receives exactly len(vals) float64s from src with tag.
func (c *Comm) RecvFloat64s(vals []float64, src, tag int) {
	b := make([]byte, 8*len(vals))
	n := c.Recv(b, src, tag)
	GetFloat64s(vals[:n/8], b[:n])
}

// AllreduceFloat64s element-wise reduces in into out across all ranks.
func (c *Comm) AllreduceFloat64s(in, out []float64, op Op) {
	ib := Float64Bytes(in)
	ob := make([]byte, len(ib))
	c.Allreduce(ib, ob, op, Float64)
	GetFloat64s(out, ob)
}

// AllreduceFloat64 reduces a single float64 across all ranks.
func (c *Comm) AllreduceFloat64(v float64, op Op) float64 {
	out := make([]float64, 1)
	c.AllreduceFloat64s([]float64{v}, out, op)
	return out[0]
}

// AllreduceInt64 reduces a single int64 across all ranks.
func (c *Comm) AllreduceInt64(v int64, op Op) int64 {
	ib := Int64Bytes([]int64{v})
	ob := make([]byte, 8)
	c.Allreduce(ib, ob, op, Int64)
	out := make([]int64, 1)
	GetInt64s(out, ob)
	return out[0]
}

// ReduceFloat64s reduces in to root's out (out may be nil elsewhere).
func (c *Comm) ReduceFloat64s(in, out []float64, root int, op Op) {
	ib := Float64Bytes(in)
	var ob []byte
	if out != nil {
		ob = make([]byte, len(ib))
	}
	c.Reduce(ib, ob, root, op, Float64)
	if out != nil && c.Rank() == root {
		GetFloat64s(out, ob)
	}
}

// BcastFloat64s broadcasts root's vals to every rank's vals.
func (c *Comm) BcastFloat64s(vals []float64, root int) {
	b := make([]byte, 8*len(vals))
	if c.Rank() == root {
		PutFloat64s(b, vals)
	}
	c.Bcast(b, root)
	GetFloat64s(vals, b)
}

// BcastInt64 broadcasts a single int64 from root.
func (c *Comm) BcastInt64(v int64, root int) int64 {
	b := Int64Bytes([]int64{v})
	c.Bcast(b, root)
	out := make([]int64, 1)
	GetInt64s(out, b)
	return out[0]
}

// Gather collects every rank's equal-sized in into root's out (which must
// hold Size()*len(in) bytes; non-roots may pass nil).
func (c *Comm) Gather(in, out []byte, root int) { c.c.Gather(in, out, root) }

// Allgather collects every rank's in into every rank's out
// (Size()*len(in) bytes).
func (c *Comm) Allgather(in, out []byte) { c.c.Allgather(in, out) }

// Scatter distributes len(out)-byte slices of root's in to every rank's out.
func (c *Comm) Scatter(in, out []byte, root int) { c.c.Scatter(in, out, root) }

// Sendrecv pairs a send and a receive without deadlock risk (the analogue
// of MPI_Sendrecv); returns the received byte count.
func (c *Comm) Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) int {
	return c.c.Sendrecv(sendBuf, dst, sendTag, recvBuf, src, recvTag)
}
