// Package pure is a Go implementation of the Pure programming model
// (Psota & Solar-Lezama, "Pure: Evolving Message Passing To Better Leverage
// Shared Memory Within Nodes", PPoPP 2024): message passing with optional
// tasks.
//
// A Pure program is SPMD: Run launches a fixed set of ranks that execute the
// same function and communicate explicitly.  The rank namespace is flat
// across the (virtual) cluster even though ranks within a node share an
// address space; the runtime routes each message over the fastest path its
// endpoints allow — a lock-free single-producer/single-consumer buffer queue
// for small intra-node messages, a single-copy rendezvous protocol for large
// intra-node messages, and the inter-node transport otherwise.  Collectives
// (Barrier, Reduce, Allreduce, Bcast) are semantically equivalent to MPI's
// and use lock-free intra-node structures with tree bridging across nodes.
// Communicators are created with Comm.Split.
//
// Optionally, a rank may wrap a computational hotspot in a Task.  Executing
// a task hands its chunks to the runtime, which lets any co-resident rank
// that is blocked waiting on communication steal chunks (the Spin-Steal-Wait
// loop), automatically overlapping communication and computation.
//
// Messaging rules (these mirror the paper's persistent channels):
//
//   - Messages on the same (source, destination, tag, communicator) channel
//     are delivered in send order.
//   - The eager/rendezvous protocol split is by message size (Config.
//     SmallMsgMax, default 8 KiB).  Sender and receiver must agree on the
//     side of the threshold, which in practice means posting receives of the
//     expected message size.
//   - After a blocking Send (or a completed Isend) returns, the buffer may
//     be reused immediately.
//   - Tags must lie in [0, 1<<29); there are no wildcard sources or tags.
package pure

import (
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Op is a reduction operator.
type Op = collective.Op

// Reduction operators, semantically matching their MPI counterparts.
const (
	Sum  = collective.OpSum
	Prod = collective.OpProd
	Min  = collective.OpMin
	Max  = collective.OpMax
)

// DType identifies an element type for typed reductions.
type DType = collective.DType

// Element types.
const (
	Float64 = collective.Float64
	Float32 = collective.Float32
	Int64   = collective.Int64
	Int32   = collective.Int32
	Uint8   = collective.Uint8
)

// ChunkMode selects task chunk allocation granularity.
type ChunkMode = sched.ChunkMode

// Chunk allocation modes.
const (
	SingleChunk          = sched.SingleChunk
	GuidedSelfScheduling = sched.GuidedSelfScheduling
)

// StealPolicy selects how blocked ranks pick steal victims.
type StealPolicy = sched.StealPolicy

// Steal policies.
const (
	RandomSteal    = sched.RandomSteal
	NUMAAwareSteal = sched.NUMAAwareSteal
	StickySteal    = sched.StickySteal
)

// Spec describes the virtual cluster to run on; see topology.Spec.
type Spec = topology.Spec

// Policy selects how ranks are laid out over hardware threads.
type Policy = topology.Policy

// Placement policies.
const (
	SMPPlacement        = topology.SMP
	RoundRobinPlacement = topology.RoundRobin
	CustomPlacement     = topology.Custom
)

// Seat pins one rank to a hardware thread (used with CustomPlacement).
type Seat = topology.HWThread

// CoriNode returns a Cori-like node spec (2 sockets x 16 cores x 2 HT).
func CoriNode(nodes int) Spec { return topology.CoriSpec(nodes) }

// NetConfig is the inter-node network cost model; see netsim.Config.
type NetConfig = netsim.Config

// Faults is the inter-node fault-injection configuration (set it on
// NetConfig.Faults); see netsim.Faults.  Injected drops, duplicates and
// reorders are recovered transparently by the runtime's link-layer
// ack/retransmit protocol, at the cost of retransmission latency.
type Faults = netsim.Faults

// AriesNet returns the Cray-Aries-like model used for multi-node runs.
func AriesNet() NetConfig { return netsim.Aries() }

// TransportConfig configures the real inter-node transport (one OS process
// per node over TCP); see the transport package and docs/TRANSPORT.md.
// Set it on Config.Transport, usually via TransportFromEnv under the
// purerun launcher.
type TransportConfig = transport.Config

// TransportFaults is the real transport's fault-injection plan (set it on
// TransportConfig.Faults): seeded drops of first transmissions and
// receive-side delays, all recovered by the link protocol.
type TransportFaults = transport.Faults

// TransportFromEnv builds a TransportConfig from the PURE_NODE/PURE_ADDRS/
// PURE_JOB environment set by the purerun launcher.  It returns (nil, nil)
// when the process is not running under a launcher, so a worker binary can
// unconditionally assign the result to Config.Transport and still run
// standalone.
func TransportFromEnv() (*TransportConfig, error) { return transport.FromEnv() }

// Config configures Run.  The zero value plus NRanks runs all ranks on one
// virtual node with default thresholds.
type Config struct {
	// NRanks is the number of ranks (fixed for the program's lifetime).
	NRanks int
	// Spec is the virtual cluster; zero means one node sized to NRanks.
	Spec Spec
	// RanksPerNode caps ranks placed per node (0 = node capacity).
	RanksPerNode int
	// Policy selects the rank-to-hardware mapping (SMP block placement by
	// default); Seats supplies an explicit per-rank mapping for
	// Policy == topology.Custom (e.g. built from a CrayPAT reorder file via
	// topology.PlacementFromReorder).
	Policy Policy
	Seats  []Seat
	// Net is the inter-node cost model (zero = free loopback).
	Net NetConfig
	// Transport, when non-nil, replaces the modeled network with a real
	// inter-node transport: this process runs only the ranks topology
	// places on Transport.Node, and cross-node traffic travels real
	// sockets.  Launch one process per node with matching configs —
	// normally via cmd/purerun, which provides the config through the
	// environment (TransportFromEnv).  Mutually exclusive with Net.Faults;
	// Spec.Nodes must equal len(Transport.Addrs).
	Transport *TransportConfig
	// SmallMsgMax is the eager/rendezvous threshold in bytes (default 8 KiB).
	SmallMsgMax int
	// PBQSlots is the small-message queue depth per channel (default 16).
	PBQSlots int
	// SPTDMax is the small/large collective threshold in bytes (default 2 KiB).
	SPTDMax int
	// SpinBudget is the SSW-Loop probe count between yields (default 64).
	SpinBudget int
	// HelpersPerNode starts helper threads that only steal task chunks.
	HelpersPerNode int
	// ChunkMode, StealPolicy and OwnerSteals tune the task scheduler.
	ChunkMode   ChunkMode
	StealPolicy StealPolicy
	OwnerSteals bool
	// Trace, when non-nil, records runtime events into per-rank ring buffers
	// (build one with NewTrace(NRanks, 0)).  Disabled tracing costs one nil
	// check per instrumentation site; see docs/OBSERVABILITY.md.
	Trace *Trace
	// Metrics, when non-nil, maintains live counters/gauges/histograms that
	// can be snapshotted at any time (build one with NewMetrics()).
	Metrics *Metrics
	// MonitorAddr, when non-empty, serves the live runtime monitor on that
	// TCP address while the program runs: GET /metrics is a Prometheus
	// scrape of Config.Metrics, /ranks is a JSON view of every rank's
	// current wait state (what a blocked rank is waiting on, and for how
	// long), and /debug/pprof exposes the standard Go profiles.  ":0" picks
	// a free port — read it back with Rank.MonitorAddr.  The monitor serves
	// whatever the configuration already records; it does not itself enable
	// tracing or metrics.  See docs/OBSERVABILITY.md.
	MonitorAddr string
	// HangTimeout arms the runtime watchdog: if every rank is blocked in the
	// runtime and no progress happens for this long, the run is aborted with
	// a *RunError that names each blocked rank, what it was waiting on, and —
	// for true deadlocks — the rank-to-rank wait-for cycle.  0 disables the
	// watchdog.  See docs/ROBUSTNESS.md for choosing a value.
	HangTimeout time.Duration
	// Deadline aborts the run outright after a wall-clock duration,
	// regardless of progress.  0 means no deadline.  Note that the abort is
	// cooperative: a rank spinning in pure application compute (never
	// re-entering the runtime) cannot be unwound and will be reported as
	// running.
	Deadline time.Duration
}

// Run launches a Pure program: main runs once per rank, concurrently.
// It returns after every rank's main has returned, or an error if the
// configuration is invalid or a rank panicked.
//
// Error contract: everything checkable before the ranks start — NRanks,
// negative tuning knobs, Seats/Policy consistency, a Trace sized for a
// different rank count — is reported as a descriptive error, never a
// panic.  Per-call misuse inside main (an out-of-range peer rank, a tag
// outside [0, 2^29), a receive buffer smaller than the arriving message)
// panics at the offending call site, mirroring how MPI aborts on such
// errors; those panics are intentional and documented on each method.
func Run(cfg Config, main func(r *Rank)) error {
	return core.Run(coreConfig(cfg), func(r *core.Rank) {
		main(&Rank{r: r, world: &Comm{c: r.World()}})
	})
}

// coreConfig maps the public configuration onto the runtime's.
func coreConfig(cfg Config) core.Config {
	return core.Config{
		NRanks:         cfg.NRanks,
		Spec:           cfg.Spec,
		RanksPerNode:   cfg.RanksPerNode,
		Policy:         cfg.Policy,
		Seats:          cfg.Seats,
		Net:            cfg.Net,
		Transport:      cfg.Transport,
		SmallMsgMax:    cfg.SmallMsgMax,
		PBQSlots:       cfg.PBQSlots,
		SPTDMax:        cfg.SPTDMax,
		SpinBudget:     cfg.SpinBudget,
		HelpersPerNode: cfg.HelpersPerNode,
		ChunkMode:      cfg.ChunkMode,
		StealPolicy:    cfg.StealPolicy,
		OwnerSteals:    cfg.OwnerSteals,
		Trace:          cfg.Trace,
		Metrics:        cfg.Metrics,
		MonitorAddr:    cfg.MonitorAddr,
		HangTimeout:    cfg.HangTimeout,
		Deadline:       cfg.Deadline,
	}
}

// RunError is the structured error Run returns when the runtime aborts
// instead of completing (a rank panicked or called Abort, the watchdog
// diagnosed a deadlock or stall, the deadline expired, or a remote send
// exhausted its retry budget).  Inspect it with errors.As.
type RunError = core.RunError

// RankFailure names one failed rank inside a RunError.
type RankFailure = core.RankFailure

// BlockedRank is a surviving rank the abort unwound mid-wait.
type BlockedRank = core.BlockedRank

// WaitRecord describes what a blocked rank was waiting on.
type WaitRecord = core.WaitRecord

// WaitKind classifies a WaitRecord.
type WaitKind = core.WaitKind

// RunError causes.
const (
	CausePanic    = core.CausePanic
	CauseAbort    = core.CauseAbort
	CauseDeadlock = core.CauseDeadlock
	CauseStall    = core.CauseStall
	CauseDeadline = core.CauseDeadline
	CauseNetDead  = core.CauseNetDead
	CauseNodeDead = core.CauseNodeDead
)

// Rank is one rank's handle on the runtime.  Handles are not shareable
// between goroutines.
type Rank struct {
	r     *core.Rank
	world *Comm
}

// ID returns the rank's id in [0, NRanks).
func (r *Rank) ID() int { return r.r.ID() }

// NRanks returns the program's rank count.
func (r *Rank) NRanks() int { return r.r.NRanks() }

// Node returns the virtual node index hosting this rank.
func (r *Rank) Node() int { return r.r.Node() }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.world }

// StealStats reports the rank's lifetime (steal attempts, chunks stolen).
func (r *Rank) StealStats() (attempts, stolen int64) { return r.r.StealStats() }

// Abort terminates the whole run from this rank (the analogue of MPI_Abort):
// every rank blocked in the runtime unwinds, and Run returns a *RunError
// naming this rank and err as the cause.  Abort does not return.
func (r *Rank) Abort(err error) { r.r.Abort(err) }

// Metrics returns the run's metrics registry (Config.Metrics), or nil when
// metrics are disabled.  Ranks may snapshot or extend it mid-run.
func (r *Rank) Metrics() *Metrics { return r.r.Metrics() }

// MonitorAddr returns the live monitor's bound address ("" when
// Config.MonitorAddr was not set).  With ":0" this is how a program learns
// which port the monitor picked.
func (r *Rank) MonitorAddr() string { return r.r.MonitorAddr() }

// WaitFor parks the rank in the SSW-Loop until cond reports true: between
// probes the rank steals Pure Task chunks, and aborts and dead-node
// detection unwind the wait like any runtime-internal blocking site.  cond
// must be cheap and side-effect-free on the false path — typically a fan-in
// over Channel.RecvReady or Channel.TryRecv across many sources.
func (r *Rank) WaitFor(cond func() bool) { r.r.WaitFor(cond) }

// NewTask defines a Pure Task split into nchunks chunks.  body receives a
// half-open chunk range [start, end) that it must process exactly once per
// execution, plus the per-execute argument; it must be thread-safe across
// disjoint ranges.  Pass nchunks = 0 for the default (64).
func (r *Rank) NewTask(nchunks int, body func(start, end int64, extra any)) *Task {
	return &Task{t: r.r.NewTask(nchunks, body)}
}

// Task is a Pure Task; see Rank.NewTask.
type Task struct {
	t *core.Task
}

// Execute runs every chunk of the task, possibly assisted by thieving ranks,
// and returns only when all chunks completed.  extra is forwarded to each
// body invocation.
func (t *Task) Execute(extra any) TaskStats {
	s := t.t.Execute(extra)
	return TaskStats{OwnerChunks: s.OwnerChunks, StolenChunks: s.StolenChunks}
}

// Chunks returns the task's chunk count.
func (t *Task) Chunks() int64 { return t.t.Chunks() }

// AlignedIdxRange maps the chunk range to a cacheline-aligned index range
// over n elements of elemSize bytes (use inside task bodies to avoid false
// sharing; the paper's pure_aligned_idx_range).
func (t *Task) AlignedIdxRange(n int64, elemSize int, startChunk, endChunk int64) (lo, hi int64) {
	return t.t.AlignedIdxRange(n, elemSize, startChunk, endChunk)
}

// TaskStats reports how one Execute's chunks were distributed.
type TaskStats struct {
	OwnerChunks  int64
	StolenChunks int64
}

// Request is an in-flight nonblocking operation.
type Request = core.Request

// RankStats is one rank's operation counters; see RunWithReport.
type RankStats = core.RankStats

// Report is the profiling output of RunWithReport: per-rank counters plus
// their sum (the runtime analogue of the paper's profiling modes).  When the
// run was configured with Config.Trace or Config.Metrics, the report carries
// them too, so Timeline/WriteChromeTrace and snapshot exports work straight
// off the return value.
type Report struct {
	PerRank []RankStats
	Total   RankStats

	// Trace is the run's event trace (nil unless Config.Trace was set).
	Trace *Trace
	// Metrics is the run's metrics registry (nil unless Config.Metrics was set).
	Metrics *Metrics
}

// RunWithReport is Run plus counter harvesting: message/byte counts per
// protocol path, collective calls, task chunk distribution, and SSW-Loop
// steal statistics for every rank.
func RunWithReport(cfg Config, main func(r *Rank)) (Report, error) {
	stats, err := core.RunWithStats(coreConfig(cfg), func(r *core.Rank) {
		main(&Rank{r: r, world: &Comm{c: r.World()}})
	})
	rep := Report{PerRank: stats, Trace: cfg.Trace, Metrics: cfg.Metrics}
	for _, s := range stats {
		rep.Total.Add(s)
	}
	return rep, err
}
