package pure

import (
	"io"

	"repro/internal/obs"
)

// Observability surface: re-exports of the internal/obs tracer and metrics
// registry plus Report conveniences.  See docs/OBSERVABILITY.md for usage.

// Trace is a low-overhead event tracer: one single-writer ring buffer of
// fixed-size event records per rank.  Pass one via Config.Trace.
type Trace = obs.Trace

// Event is one trace record; see obs.Event for field semantics.
type Event = obs.Event

// EventKind identifies what an Event records (sends and receives by protocol
// path, queue stalls, rendezvous handoffs, collectives, steals, tasks).
type EventKind = obs.Kind

// Metrics is a registry of named counters, gauges and histograms that can be
// snapshotted at any time, including mid-run.  Pass one via Config.Metrics.
type Metrics = obs.Metrics

// MetricsSnapshot is a point-in-time copy of a Metrics registry; it exports
// to JSON (WriteJSON) and the Prometheus text format (WritePrometheus).
type MetricsSnapshot = obs.Snapshot

// NewTrace builds a tracer for nranks ranks with perRankEvents ring slots per
// rank (0 selects the default, 65536 events ≈ 2.5 MiB per rank).  The trace
// retains the newest events when a ring wraps; Trace.Dropped reports losses.
func NewTrace(nranks, perRankEvents int) *Trace { return obs.NewTrace(nranks, perRankEvents) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// ParsePrometheus parses the Prometheus text format written by
// MetricsSnapshot.WritePrometheus back into a snapshot (round-trip testing,
// scrape post-processing).
func ParsePrometheus(r io.Reader) (MetricsSnapshot, error) { return obs.ParsePrometheus(r) }

// Timeline returns the run's events merged across ranks and sorted by start
// time, or nil when the run was not traced.  Valid once RunWithReport has
// returned (the rings are single-writer and unsynchronized while ranks run).
func (rep *Report) Timeline() []Event {
	if rep.Trace == nil {
		return nil
	}
	return rep.Trace.Events()
}

// WriteChromeTrace writes the run's timeline in the Chrome trace_event JSON
// format, loadable in chrome://tracing and https://ui.perfetto.dev: nodes
// become processes, ranks become threads, spans become complete events.  It
// is a no-op (and returns nil) when the run was not traced.
func (rep *Report) WriteChromeTrace(w io.Writer) error {
	if rep.Trace == nil {
		return nil
	}
	return obs.WriteChromeTrace(w, rep.Trace.Events(), func(rank int32) int {
		if int(rank) < len(rep.PerRank) {
			return rep.PerRank[rank].Node
		}
		return 0
	})
}
