package pure

import (
	"io"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// Observability surface: re-exports of the internal/obs tracer and metrics
// registry plus Report conveniences.  See docs/OBSERVABILITY.md for usage.

// Trace is a low-overhead event tracer: one single-writer ring buffer of
// fixed-size event records per rank.  Pass one via Config.Trace.
type Trace = obs.Trace

// Event is one trace record; see obs.Event for field semantics.
type Event = obs.Event

// EventKind identifies what an Event records (sends and receives by protocol
// path, queue stalls, rendezvous handoffs, collectives, steals, tasks).
type EventKind = obs.Kind

// Metrics is a registry of named counters, gauges and histograms that can be
// snapshotted at any time, including mid-run.  Pass one via Config.Metrics.
type Metrics = obs.Metrics

// MetricsSnapshot is a point-in-time copy of a Metrics registry; it exports
// to JSON (WriteJSON) and the Prometheus text format (WritePrometheus).
type MetricsSnapshot = obs.Snapshot

// NewTrace builds a tracer for nranks ranks with perRankEvents ring slots per
// rank (0 selects the default, 65536 events ≈ 2.5 MiB per rank).  The trace
// retains the newest events when a ring wraps; Trace.Dropped reports losses.
func NewTrace(nranks, perRankEvents int) *Trace { return obs.NewTrace(nranks, perRankEvents) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// ParsePrometheus parses the Prometheus text format written by
// MetricsSnapshot.WritePrometheus back into a snapshot (round-trip testing,
// scrape post-processing).
func ParsePrometheus(r io.Reader) (MetricsSnapshot, error) { return obs.ParsePrometheus(r) }

// Timeline returns the run's events merged across ranks and sorted by start
// time, or nil when the run was not traced.  Valid once RunWithReport has
// returned (the rings are single-writer and unsynchronized while ranks run).
func (rep *Report) Timeline() []Event {
	if rep.Trace == nil {
		return nil
	}
	return rep.Trace.Events()
}

// WriteChromeTrace writes the run's timeline in the Chrome trace_event JSON
// format, loadable in chrome://tracing and https://ui.perfetto.dev: nodes
// become processes, ranks become threads, spans become complete events.  It
// is a no-op (and returns nil) when the run was not traced.
func (rep *Report) WriteChromeTrace(w io.Writer) error {
	if rep.Trace == nil {
		return nil
	}
	return obs.WriteChromeTrace(w, rep.Trace.Events(), rep.nodeOf)
}

func (rep *Report) nodeOf(rank int32) int {
	if int(rank) < len(rep.PerRank) {
		return rep.PerRank[rank].Node
	}
	return 0
}

// Analysis is the derived trace-analytics report: message matching per
// protocol path with latency histograms, unmatched-operation listing,
// collective skew per round with straggler ranking, PureBufferQueue
// backpressure hot pairs, per-rank time/work breakdown, and a critical-path
// estimate.  See internal/obs/analyze for the field-level documentation; the
// struct marshals to JSON and renders with WriteText.
type Analysis = analyze.Analysis

// Analyze runs the trace analytics over the run's timeline, using the
// report's rank-to-node placement for per-node collective-round grouping.
// It returns nil when the run was not traced.
func (rep *Report) Analyze() *Analysis {
	if rep.Trace == nil {
		return nil
	}
	a := analyze.Run(rep.Trace.Events(), rep.Trace.NRanks(), analyze.Options{NodeOf: rep.nodeOf})
	a.Dropped = rep.Trace.Dropped()
	return a
}

// TraceDump is a trace read back from its binary dump (ReadTraceBin): the
// recorded events plus the rank count and ring-drop count at dump time.
type TraceDump = obs.TraceDump

// WriteTraceBin dumps the run's trace in the versioned binary format that
// cmd/puretrace consumes (and ReadTraceBin parses), so traces survive the
// recording process and can be analyzed elsewhere.  It is a no-op (and
// returns nil) when the run was not traced.
func (rep *Report) WriteTraceBin(w io.Writer) error {
	if rep.Trace == nil {
		return nil
	}
	return obs.WriteTraceBin(w, rep.Trace)
}

// ReadTraceBin parses a binary trace dump written by Report.WriteTraceBin
// (or obs.WriteTraceBin).
func ReadTraceBin(r io.Reader) (*TraceDump, error) { return obs.ReadTraceBin(r) }

// AnalyzeDump runs the trace analytics over a dump read back with
// ReadTraceBin.  Node placement is not recorded in the dump, so collective
// rounds are grouped as if all ranks share one node (exact for single-node
// runs, an approximation otherwise).
func AnalyzeDump(d *TraceDump) *Analysis {
	a := analyze.Run(d.Events, d.NRanks, analyze.Options{})
	a.Dropped = d.Dropped
	return a
}
