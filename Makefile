# Convenience entry points; everything is plain `go` underneath.

.PHONY: build test race chaos verify bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/queue ./internal/collective ./internal/obs ./internal/rma

# The robustness suite under the race detector: watchdog/abort containment
# plus the fault-injection (drop/dup/reorder) chaos tests across several
# seeds (override with PURE_CHAOS_SEEDS=comma,separated,ints).  Sized to
# stay CI-friendly on a single CPU.
chaos:
	go test -race -count=1 \
		-run 'TestChaos|TestWatchdog|TestPanic|TestRankAbort|TestAllPanicked|TestDeadline|TestNilRank|TestAbortEmits|TestPoison|TestDeadlockDiagnosis|TestAbortFrom|TestFaultInjection|TestRMA' \
		./internal/core ./internal/ssw ./pure

# The full gate: build + vet + tests + race detector on the lock-free
# packages.  Same script CI runs.
verify:
	sh scripts/verify.sh

bench:
	go test -run XXX -bench . -benchtime=1s ./internal/core
