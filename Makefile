# Convenience entry points; everything is plain `go` underneath.

.PHONY: build test race verify bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/queue ./internal/collective ./internal/obs

# The full gate: build + vet + tests + race detector on the lock-free
# packages.  Same script CI runs.
verify:
	sh scripts/verify.sh

bench:
	go test -run XXX -bench . -benchtime=1s ./internal/core
