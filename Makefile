# Convenience entry points; everything is plain `go` underneath.

.PHONY: build test race chaos chaos-net check fuzz verify bench bench-json analyze statsd shmem

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/queue ./internal/collective ./internal/obs ./internal/rma \
		./internal/sched ./internal/netsim ./internal/ssw ./internal/core ./internal/statsd \
		./internal/shmem ./internal/apps/shmem

# The deterministic schedule explorer: model tests for the lock-free
# protocols (PBQ/ring FIFO refinement, SPTD no-lost-contribution, RMA
# epochs, work-stealing exactly-once) over PCT seeds plus bounded
# exhaustive runs.  Override the seed count with PURE_CHECK_SEEDS=n;
# replay one failing schedule with PURE_CHECK_SEED=n.
check:
	go test -tags purecheck -count=1 ./internal/check

# Short local fuzz pass over the wire-format decoders (CI runs the same
# targets with a longer budget).
fuzz:
	go test -count=1 -fuzz FuzzFrameDecode -fuzztime 30s ./internal/rma
	go test -count=1 -fuzz FuzzCodecRoundTrip -fuzztime 30s ./internal/codec
	go test -count=1 -fuzz FuzzStatsdParse -fuzztime 30s ./internal/statsd
	go test -count=1 -fuzz FuzzShmemFrame -fuzztime 30s ./internal/shmem

# The robustness suite under the race detector: watchdog/abort containment
# plus the fault-injection (drop/dup/reorder) chaos tests across several
# seeds (override with PURE_CHAOS_SEEDS=comma,separated,ints).  Sized to
# stay CI-friendly on a single CPU.
chaos:
	go test -race -count=1 \
		-run 'TestChaos|TestWatchdog|TestPanic|TestRankAbort|TestAllPanicked|TestDeadline|TestNilRank|TestAbortEmits|TestPoison|TestDeadlockDiagnosis|TestAbortFrom|TestFaultInjection|TestRMA' \
		./internal/core ./internal/ssw ./pure ./internal/apps/shmem

# Chaos against the real TCP transport: full runtimes over real sockets
# in one process (lossy links, kill-link reconnect, partition-to-death)
# under the race detector, then real OS processes (SIGKILL a node
# mid-Allreduce, 15%-lossy two-process run) plus the transport unit
# suite and the purerun launcher tests.  See docs/TRANSPORT.md.
chaos-net:
	go test -race -count=1 -run 'TestChaosTCP' ./internal/core
	go test -count=1 ./internal/transport ./internal/livechaos ./cmd/purerun

# The full gate: build + vet + tests + race detector on the lock-free
# packages.  Same script CI runs.
verify:
	sh scripts/verify.sh

bench:
	go test -run XXX -bench . -benchtime=1s ./internal/core

# Headline microbenchmarks as JSON (BENCH_pr9.json) for cross-commit
# comparison.
bench-json:
	sh scripts/bench_json.sh

# Trace-analytics smoke: run a traced stencil, dump the binary trace, and
# analyze it with puretrace (the same pipeline verify.sh gates on).
analyze:
	go run ./cmd/purebench -trace-bin /tmp/pure-trace.bin
	go run ./cmd/puretrace analyze /tmp/pure-trace.bin

# The statsd aggregation pipeline (docs/STATSD.md): protocol + app tests
# (the shared interner under -race), a verified single-process run, and the
# steal-on vs steal-off comparison table.
statsd:
	go test -count=1 ./internal/statsd ./internal/apps/statsd
	go test -race -count=1 ./internal/statsd
	go run ./cmd/purestatsd -events 200000 -zipf 1.2 -steal -workscale 64
	go run ./cmd/purebench -quick -exp statsd

# The PGAS layer (docs/SHMEM.md): symmetric-heap/mailbox unit tests and
# the exactness-proof apps (the lossy netsim chaos runs under -race),
# then the exactness-gated benchmark table.
shmem:
	go test -count=1 ./internal/shmem ./internal/apps/shmem ./pure
	go test -race -count=1 ./internal/shmem ./internal/apps/shmem
	go run ./cmd/purebench -quick -exp shmem
