package ampi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/collective"
)

// collTagBase reserves the upper tag space for collective trees.
const collTagBase = 1 << 29

// Op / DType re-exports (matching mpibase and pure).
type Op = collective.Op

// Reduction operators.
const (
	Sum  = collective.OpSum
	Prod = collective.OpProd
	Min  = collective.OpMin
	Max  = collective.OpMax
)

// DType is a payload element type.
type DType = collective.DType

// Element types.
const (
	Float64 = collective.Float64
	Int64   = collective.Int64
)

// inMsg is a buffered arrived message.
type inMsg struct {
	src, tag int
	data     []byte
}

// postedRecv is a receive awaiting its message.
type postedRecv struct {
	src, tag int
	buf      []byte
	n        int
	done     bool // guarded by the owning mailbox's lock; read via Done()
	mu       *sync.Mutex
}

// Done reports completion (safe for the waiting vrank's spin loop).
func (p *postedRecv) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// mailbox is one vrank's matching state (MPI non-overtaking per (src, tag)).
type mailbox struct {
	mu         sync.Mutex
	unexpected []*inMsg
	posted     []*postedRecv
}

// Comm is the world communicator handle (this comparator does not implement
// sub-communicators; the paper's AMPI comparison uses world-only patterns).
type Comm struct {
	v *VRank
}

// Rank returns the calling vrank's id.
func (c *Comm) Rank() int { return c.v.id }

// Size returns the vrank count.
func (c *Comm) Size() int { return c.v.rt.cfg.VRanks }

func (c *Comm) checkPeer(p int, what string) {
	if p < 0 || p >= c.Size() {
		panic(fmt.Sprintf("ampi: %s rank %d out of range [0,%d)", what, p, c.Size()))
	}
	if p == c.v.id {
		panic("ampi: self-messaging is not supported")
	}
}

func checkTag(tag int) {
	if tag < 0 || tag >= collTagBase {
		panic(fmt.Sprintf("ampi: tag %d outside [0, %d)", tag, collTagBase))
	}
}

// Send delivers buf to dst (buffered eager semantics: the payload is copied
// and the call returns immediately once matched or queued).
func (c *Comm) Send(buf []byte, dst, tag int) {
	c.checkPeer(dst, "destination")
	checkTag(tag)
	c.send(buf, dst, tag)
}

func (c *Comm) send(buf []byte, dst, tag int) {
	box := c.v.rt.boxes[dst]
	box.mu.Lock()
	for i, pr := range box.posted {
		if pr.src == c.v.id && pr.tag == tag {
			if len(buf) > len(pr.buf) {
				box.mu.Unlock()
				panic(fmt.Sprintf("ampi: %d-byte message overflows %d-byte receive buffer", len(buf), len(pr.buf)))
			}
			pr.n = copy(pr.buf, buf)
			pr.done = true
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			box.mu.Unlock()
			return
		}
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	box.unexpected = append(box.unexpected, &inMsg{src: c.v.id, tag: tag, data: cp})
	box.mu.Unlock()
}

// Recv blocks until a matching message is delivered into buf; the vrank's
// PE is released while it waits so co-located vranks can run.
func (c *Comm) Recv(buf []byte, src, tag int) int {
	c.checkPeer(src, "source")
	checkTag(tag)
	return c.recv(buf, src, tag)
}

func (c *Comm) recv(buf []byte, src, tag int) int {
	box := c.v.rt.boxes[c.v.id]
	box.mu.Lock()
	for i, m := range box.unexpected {
		if m.src == src && m.tag == tag {
			box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
			box.mu.Unlock()
			if len(m.data) > len(buf) {
				panic(fmt.Sprintf("ampi: %d-byte message overflows %d-byte receive buffer", len(m.data), len(buf)))
			}
			return copy(buf, m.data)
		}
	}
	pr := &postedRecv{src: src, tag: tag, buf: buf, mu: &box.mu}
	box.posted = append(box.posted, pr)
	box.mu.Unlock()
	c.v.blockingWait(pr.Done)
	return pr.n
}

// Barrier blocks until every vrank has entered it (dissemination algorithm).
func (c *Comm) Barrier() {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.v.id
	token := []byte{1}
	in := make([]byte, 1)
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		c.send(token, (me+dist)%n, collTagBase+round)
		c.recv(in, (me-dist+n)%n, collTagBase+round)
	}
}

// Bcast distributes root's buf via a binomial tree.
func (c *Comm) Bcast(buf []byte, root int) {
	if root < 0 || root >= c.Size() {
		panic("ampi: bad root")
	}
	n := c.Size()
	if n == 1 {
		return
	}
	vr := (c.v.id - root + n) % n
	toReal := func(u int) int { return (u + root) % n }
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			c.recv(buf, toReal(vr-mask), collTagBase+16)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			c.send(buf, toReal(vr+mask), collTagBase+16)
		}
		mask >>= 1
	}
}

// Allreduce folds in into out across all vranks (binomial reduce to vrank 0
// plus binomial broadcast).  out must hold len(in) bytes on every vrank.
func (c *Comm) Allreduce(in, out []byte, op Op, dt DType) {
	if len(out) < len(in) {
		panic(fmt.Sprintf("ampi: Allreduce out buffer %d smaller than in %d", len(out), len(in)))
	}
	n := c.Size()
	acc := out[:len(in)]
	copy(acc, in)
	var tmp []byte
	for mask := 1; mask < n; mask <<= 1 {
		if c.v.id&mask != 0 {
			c.send(acc, c.v.id-mask, collTagBase+17)
			break // partial forwarded; the broadcast refills acc
		}
		if c.v.id+mask < n {
			if tmp == nil {
				tmp = make([]byte, len(in))
			}
			c.recv(tmp[:len(in)], c.v.id+mask, collTagBase+17)
			collective.Accumulate(acc, tmp[:len(in)], op, dt)
		}
	}
	c.Bcast(acc, 0)
}

// AllreduceFloat64 folds one float64 across all vranks.
func (c *Comm) AllreduceFloat64(v float64, op Op) float64 {
	in := make([]byte, 8)
	binary.LittleEndian.PutUint64(in, math.Float64bits(v))
	out := make([]byte, 8)
	c.Allreduce(in, out, op, Float64)
	return math.Float64frombits(binary.LittleEndian.Uint64(out))
}
