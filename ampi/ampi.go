// Package ampi is an executable AMPI-style adaptive MPI runtime, the
// comparator the paper evaluates against in §5.2.2: MPI-compatible virtual
// ranks ("vranks") over-decomposed onto processing elements (PEs), with a
// measurement-based load balancer that migrates whole vranks between PEs.
//
// Like AMPI (Kale & Zheng; built on Charm++), the unit of load sharing is a
// *rank*, moved at explicit balancing points — contrast with Pure, which
// shares *chunks of a task* at communication-latency granularity.  The
// paper attributes Pure's win over AMPI to exactly this difference, and the
// discrete-event models in internal/desmodels quantify it; this package
// provides the real, runnable semantics:
//
//   - vranks are goroutines, but each PE executes at most one vrank at a
//     time (vranks hold their PE's token while computing and release it
//     while blocked in communication — AMPI's user-level-thread scheduling);
//   - messaging is MPI-like: matching on (source, tag), non-overtaking,
//     buffered eager semantics (this library is a comparator for
//     load-balancing behaviour, not a transport benchmark);
//   - Migrate is a collective balancing point: loads measured since the
//     previous call drive a longest-processing-time greedy reassignment of
//     vranks to PEs.
package ampi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ssw"
)

// Config configures a run.
type Config struct {
	// VRanks is the number of virtual MPI ranks the application sees.
	VRanks int
	// PEs is the number of processing elements (cores).  VRanks/PEs is the
	// virtualization ratio (AMPI's +vp).  VRanks must be divisible by PEs.
	PEs int
	// Strict caps each PE at VRanks/PEs vranks after balancing; when false
	// (default), the balancer may pack any number of vranks per PE, like
	// AMPI's greedy strategies.
	Strict bool
}

// Runtime is one ampi program instance.
type Runtime struct {
	cfg   Config
	peTok []chan struct{} // one token per PE; holder is the running vrank
	peOf  []int32         // vrank -> PE (atomic via int32 loads/stores)
	loads []int64         // ns of PE time consumed since last Migrate
	boxes []*mailbox
	moved atomic.Int64
	// migration epoch state
	lbMu      sync.Mutex
	lbArrived int
	lbEpoch   atomic.Int64
}

// VRank is one virtual rank's handle.
type VRank struct {
	id      int
	rt      *Runtime
	world   *Comm
	started time.Time // when the PE token was last acquired
	heldPE  int       // which PE's token this vrank is holding
	wait    ssw.Waiter
}

// Run launches the program: main runs once per vrank.
func Run(cfg Config, main func(v *VRank)) error {
	if cfg.VRanks <= 0 || cfg.PEs <= 0 {
		return fmt.Errorf("ampi: VRanks and PEs must be positive, got %+v", cfg)
	}
	if cfg.VRanks%cfg.PEs != 0 {
		return fmt.Errorf("ampi: %d vranks not divisible by %d PEs", cfg.VRanks, cfg.PEs)
	}
	rt := &Runtime{
		cfg:   cfg,
		peTok: make([]chan struct{}, cfg.PEs),
		peOf:  make([]int32, cfg.VRanks),
		loads: make([]int64, cfg.VRanks),
		boxes: make([]*mailbox, cfg.VRanks),
	}
	for pe := range rt.peTok {
		rt.peTok[pe] = make(chan struct{}, 1)
		rt.peTok[pe] <- struct{}{}
	}
	vp := cfg.VRanks / cfg.PEs
	for v := range rt.peOf {
		rt.peOf[v] = int32(v / vp) // AMPI's default block mapping
	}
	for v := range rt.boxes {
		rt.boxes[v] = &mailbox{}
	}

	var wg sync.WaitGroup
	panics := make(chan any, cfg.VRanks)
	for id := 0; id < cfg.VRanks; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("vrank %d: %v", id, p)
				}
			}()
			v := &VRank{id: id, rt: rt}
			v.world = &Comm{v: v}
			v.acquirePE()
			defer v.releasePE()
			main(v)
		}(id)
	}
	wg.Wait()
	close(panics)
	if p, ok := <-panics; ok {
		return fmt.Errorf("ampi: vrank panicked: %v", p)
	}
	return nil
}

// ID returns the vrank's id.
func (v *VRank) ID() int { return v.id }

// Size returns the number of vranks.
func (v *VRank) Size() int { return v.rt.cfg.VRanks }

// PE returns the processing element currently hosting this vrank.
func (v *VRank) PE() int { return int(atomic.LoadInt32(&v.rt.peOf[v.id])) }

// World returns the world communicator.
func (v *VRank) World() *Comm { return v.world }

// Migrations returns how many vrank moves the balancer has performed.
func (rt *Runtime) Migrations() int64 { return rt.moved.Load() }

// Runtime exposes the runtime for diagnostics.
func (v *VRank) Runtime() *Runtime { return v.rt }

// acquirePE blocks until this vrank's current PE token is free, then starts
// the load clock.  The PE is re-read after acquisition in case the balancer
// moved the vrank while it waited.
func (v *VRank) acquirePE() {
	for {
		pe := int(atomic.LoadInt32(&v.rt.peOf[v.id]))
		<-v.rt.peTok[pe]
		// Confirm the assignment did not change while we waited.
		if int(atomic.LoadInt32(&v.rt.peOf[v.id])) == pe {
			v.heldPE = pe
			v.started = time.Now()
			return
		}
		v.rt.peTok[pe] <- struct{}{}
	}
}

// releasePE returns the token of the PE this vrank actually holds (the
// balancer may have reassigned the vrank since acquisition) and accounts
// the held time as load.
func (v *VRank) releasePE() {
	atomic.AddInt64(&v.rt.loads[v.id], time.Since(v.started).Nanoseconds())
	v.rt.peTok[v.heldPE] <- struct{}{}
}

// blockingWait releases the PE while waiting (so a co-located vrank can
// run — the overlap overdecomposition buys) and reacquires it after.
func (v *VRank) blockingWait(cond func() bool) {
	if cond() {
		return
	}
	v.releasePE()
	v.wait.Wait(cond)
	v.acquirePE()
}

// Migrate is the collective load-balancing point (AMPI_Migrate): all vranks
// must call it.  The last arrival runs the balancer; every vrank may come
// back assigned to a different PE.
func (v *VRank) Migrate() {
	rt := v.rt
	epoch := rt.lbEpoch.Load()
	rt.lbMu.Lock()
	rt.lbArrived++
	if rt.lbArrived == rt.cfg.VRanks {
		rt.lbArrived = 0
		rt.rebalance()
		rt.lbEpoch.Add(1)
		rt.lbMu.Unlock()
	} else {
		rt.lbMu.Unlock()
		v.blockingWait(func() bool { return rt.lbEpoch.Load() > epoch })
	}
	// Hop to the (possibly new) PE: release the old token, take the new.
	v.releasePE()
	v.acquirePE()
}

// rebalance reassigns vranks to PEs by descending measured load (LPT
// greedy), resetting the measurements.  Called with lbMu held and all
// vranks parked in Migrate.
func (rt *Runtime) rebalance() {
	type vl struct {
		v    int
		load int64
	}
	vs := make([]vl, rt.cfg.VRanks)
	for i := range vs {
		vs[i] = vl{v: i, load: atomic.LoadInt64(&rt.loads[i])}
	}
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].load != vs[b].load {
			return vs[a].load > vs[b].load
		}
		return vs[a].v < vs[b].v
	})
	vpCap := rt.cfg.VRanks / rt.cfg.PEs
	peLoad := make([]int64, rt.cfg.PEs)
	peCount := make([]int, rt.cfg.PEs)
	for _, e := range vs {
		best := -1
		for pe := 0; pe < rt.cfg.PEs; pe++ {
			if rt.cfg.Strict && peCount[pe] >= vpCap {
				continue
			}
			if best < 0 || peLoad[pe] < peLoad[best] {
				best = pe
			}
		}
		if best < 0 {
			best = 0
		}
		if int32(best) != atomic.LoadInt32(&rt.peOf[e.v]) {
			atomic.StoreInt32(&rt.peOf[e.v], int32(best))
			rt.moved.Add(1)
		}
		peLoad[best] += e.load
		peCount[best]++
		atomic.StoreInt64(&rt.loads[e.v], 0)
	}
}
