package ampi

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := Run(Config{VRanks: 0, PEs: 1}, func(*VRank) {}); err == nil {
		t.Error("zero vranks accepted")
	}
	if err := Run(Config{VRanks: 3, PEs: 2}, func(*VRank) {}); err == nil {
		t.Error("indivisible vrank count accepted")
	}
	err := Run(Config{VRanks: 2, PEs: 2}, func(v *VRank) {
		if v.ID() == 1 {
			panic("pow")
		}
	})
	if err == nil {
		t.Error("panic not propagated")
	}
}

func TestSendRecvAndOrdering(t *testing.T) {
	err := Run(Config{VRanks: 2, PEs: 2}, func(v *VRank) {
		c := v.World()
		if v.ID() == 0 {
			for i := 0; i < 50; i++ {
				c.Send([]byte{byte(i)}, 1, 3)
			}
		} else {
			buf := make([]byte, 1)
			for i := 0; i < 50; i++ {
				c.Recv(buf, 0, 3)
				if buf[0] != byte(i) {
					t.Errorf("message %d arrived as %d", i, buf[0])
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvPostedFirst(t *testing.T) {
	err := Run(Config{VRanks: 2, PEs: 1}, func(v *VRank) {
		// Both vranks share ONE PE: the receiver must release the PE while
		// blocked or the sender can never run.
		c := v.World()
		if v.ID() == 0 {
			buf := make([]byte, 4)
			n := c.Recv(buf, 1, 0)
			if n != 2 || buf[0] != 7 {
				t.Errorf("got % x (%d)", buf[:n], n)
			}
		} else {
			c.Send([]byte{7, 8}, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAndCollectives(t *testing.T) {
	var counter atomic.Int64
	err := Run(Config{VRanks: 6, PEs: 3}, func(v *VRank) {
		c := v.World()
		for round := 1; round <= 5; round++ {
			counter.Add(1)
			c.Barrier()
			if got := counter.Load(); got != int64(round*6) {
				t.Errorf("round %d: counter %d, want %d", round, got, round*6)
			}
			c.Barrier()
		}
		if got := c.AllreduceFloat64(float64(v.ID()+1), Sum); got != 21 {
			t.Errorf("allreduce = %v", got)
		}
		buf := make([]byte, 4)
		if v.ID() == 2 {
			buf = []byte{9, 9, 9, 9}
		}
		c.Bcast(buf, 2)
		if buf[0] != 9 {
			t.Errorf("bcast got %d", buf[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPESerialization(t *testing.T) {
	// Two vranks pinned to one PE must never hold the token simultaneously.
	var concurrent, maxConcurrent atomic.Int64
	err := Run(Config{VRanks: 4, PEs: 2}, func(v *VRank) {
		for i := 0; i < 20; i++ {
			// Holding the PE: count concurrency per PE via a global (upper
			// bound check: at most PEs holders at once).
			now := concurrent.Add(1)
			for {
				m := maxConcurrent.Load()
				if now <= m || maxConcurrent.CompareAndSwap(m, now) {
					break
				}
			}
			time.Sleep(time.Microsecond)
			concurrent.Add(-1)
			v.World().Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxConcurrent.Load() > 2 {
		t.Errorf("%d vranks computed concurrently on 2 PEs", maxConcurrent.Load())
	}
}

func TestMigrateRebalancesLoad(t *testing.T) {
	var rt *Runtime
	err := Run(Config{VRanks: 4, PEs: 2}, func(v *VRank) {
		rt = v.Runtime()
		c := v.World()
		// vranks 0 and 1 (both initially on PE 0) are heavy; after Migrate
		// the balancer should split them across PEs.
		for step := 0; step < 3; step++ {
			if v.ID() < 2 {
				busy := time.Now()
				for time.Since(busy) < 2*time.Millisecond {
				}
			}
			c.Barrier()
			v.Migrate()
		}
		if v.ID() == 0 {
			// After balancing, the two heavy vranks must sit on different PEs.
			pe0 := v.PE()
			_ = pe0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Migrations() == 0 {
		t.Error("no migrations despite skewed load")
	}
}

func TestHeavyRanksSeparatedAfterMigrate(t *testing.T) {
	// Wall-clock load measurement is noisy on a loaded single-core host, so
	// retry the end-to-end scenario a few times; the balancer itself is
	// verified deterministically in TestRebalanceLPTDeterministic.
	attempt := func() bool {
		pes := make([]int32, 4)
		err := Run(Config{VRanks: 4, PEs: 2}, func(v *VRank) {
			c := v.World()
			for step := 0; step < 3; step++ {
				if v.ID() < 2 {
					busy := time.Now()
					for time.Since(busy) < 4*time.Millisecond {
					}
				}
				c.Barrier()
				v.Migrate()
			}
			atomic.StoreInt32(&pes[v.ID()], int32(v.PE()))
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return pes[0] != pes[1]
	}
	for try := 0; try < 5; try++ {
		if attempt() {
			return
		}
	}
	t.Error("heavy vranks never separated across 5 attempts")
}

func TestRebalanceLPTDeterministic(t *testing.T) {
	// Drive the balancer directly with synthetic loads: two heavy vranks
	// initially sharing PE 0 must end up on different PEs.
	rt := &Runtime{
		cfg:   Config{VRanks: 4, PEs: 2},
		peOf:  []int32{0, 0, 1, 1},
		loads: []int64{1000000, 900000, 10, 10},
		peTok: make([]chan struct{}, 2),
	}
	rt.rebalance()
	if rt.peOf[0] == rt.peOf[1] {
		t.Fatalf("heavy vranks share PE %d after LPT rebalance", rt.peOf[0])
	}
	if rt.Migrations() == 0 {
		t.Error("no migrations recorded")
	}
	for i, l := range rt.loads {
		if l != 0 {
			t.Errorf("load[%d] = %d, want reset to 0", i, l)
		}
	}
}

func TestStrictModeCapsVP(t *testing.T) {
	counts := make([]int32, 2)
	err := Run(Config{VRanks: 4, PEs: 2, Strict: true}, func(v *VRank) {
		c := v.World()
		if v.ID() == 0 {
			busy := time.Now()
			for time.Since(busy) < time.Millisecond {
			}
		}
		c.Barrier()
		v.Migrate()
		atomic.AddInt32(&counts[v.PE()], 1)
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("strict mode violated vp cap: %v", counts)
	}
}

func TestValidationPanics(t *testing.T) {
	err := Run(Config{VRanks: 2, PEs: 2}, func(v *VRank) {
		if v.ID() != 0 {
			return
		}
		c := v.World()
		mustPanic := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}
		mustPanic("self-send", func() { c.Send([]byte{1}, 0, 0) })
		mustPanic("bad peer", func() { c.Send([]byte{1}, 9, 0) })
		mustPanic("reserved tag", func() { c.Send([]byte{1}, 1, collTagBase) })
		mustPanic("short allreduce out", func() { c.Allreduce(make([]byte, 8), make([]byte, 4), Sum, Float64) })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverdecompositionOverlapsWaits(t *testing.T) {
	// 2 vranks on 1 PE exchanging with an external partner: while vrank A
	// waits for a message, vrank B must be able to compute on the same PE.
	// (Completes only if the PE is released during blocking receives; this
	// is a liveness test.)
	done := make(chan struct{})
	go func() {
		err := Run(Config{VRanks: 4, PEs: 2}, func(v *VRank) {
			c := v.World()
			partner := (v.ID() + 2) % 4
			buf := make([]byte, 1)
			for i := 0; i < 10; i++ {
				if v.ID() < 2 {
					c.Send([]byte{1}, partner, 0)
					c.Recv(buf, partner, 0)
				} else {
					c.Recv(buf, partner, 0)
					c.Send([]byte{1}, partner, 0)
				}
			}
		})
		if err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("overdecomposed exchange deadlocked")
	}
}
