// Package repro is a Go reproduction of "Pure: Evolving Message Passing To
// Better Leverage Shared Memory Within Nodes" (Psota & Solar-Lezama,
// PPoPP 2024).
//
// The public entry points are:
//
//   - pure: the Pure programming model and runtime (messaging with optional
//     tasks);
//   - mpibase: the MPI-style baseline runtime it is evaluated against;
//   - comm: the backend-neutral interface the bundled mini-apps use;
//   - cmd/purebench: regenerates every table and figure of the paper's
//     evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.  The root bench_test.go
// exposes one testing.B benchmark per paper table/figure.
package repro
